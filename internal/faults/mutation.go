package faults

import (
	"fmt"
	"math/rand"

	"tm3270/internal/binverify"
	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/refmodel"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// mutTarget is one workload prepared for image-mutation campaigns: the
// encoded golden image, its decoded baseline stream, the binverify
// semantic contract, and the initial memory image. The static, the
// differential and the matrix campaigns all classify mutants against
// the same prepared target, so their static classifications are
// byte-identical by construction.
type mutTarget struct {
	w        *workloads.Spec
	rm       *regalloc.Map
	enc      []byte // encoded golden image
	n        int    // instruction count
	baseline []encode.DecInstr
	opts     *binverify.Options
	init     *mem.Func          // initial memory image (Init applied)
	args     map[isa.Reg]uint32 // physical entry arguments
	argSet   map[isa.Reg]bool   // registers carrying entry arguments
}

// newMutTarget compiles and verifies the workload's golden image. The
// baseline must be verifier-clean so every diagnostic on a mutant is
// attributable to the flip.
func newMutTarget(name string, cfg *StaticConfig) (*mutTarget, error) {
	w, err := workloads.ByName(name, *cfg.Params)
	if err != nil {
		return nil, err
	}
	code, err := sched.Schedule(w.Prog, *cfg.Target)
	if err != nil {
		return nil, err
	}
	rm, err := regalloc.Allocate(w.Prog)
	if err != nil {
		return nil, err
	}
	enc, err := encode.Encode(code, rm, tmsim.CodeBase)
	if err != nil {
		return nil, err
	}
	n := len(code.Instrs)
	baseline, err := encode.Decode(enc.Bytes, tmsim.CodeBase, n)
	if err != nil {
		return nil, fmt.Errorf("baseline decode: %w", err)
	}
	// The full semantic contract — entry values, declared memory map,
	// loop-bound annotations — so mutants that corrupt an address
	// computation or a loop exit land in the range and loop analyses,
	// not only the structural ones.
	opts := &binverify.Options{EntryValues: map[isa.Reg]uint32{}, MemMap: w.Regions}
	args := make(map[isa.Reg]uint32, len(w.Args))
	argSet := make(map[isa.Reg]bool, len(w.Args))
	for v, val := range w.Args {
		r := rm.Reg(v)
		opts.EntryDefined = append(opts.EntryDefined, r)
		opts.EntryValues[r] = val
		args[r] = val
		argSet[r] = true
	}
	if len(w.Prog.LoopBounds) > 0 {
		opts.LoopBounds = map[uint32]int{}
		for label, bound := range w.Prog.LoopBounds {
			if idx, ok := code.Labels[label]; ok {
				opts.LoopBounds[enc.Addr[idx]] = bound
			}
		}
	}
	if rep := binverify.Verify(baseline, cfg.Target, opts); !rep.Clean() {
		return nil, fmt.Errorf("baseline image is not verifier-clean (%d diagnostics)", len(rep.Diags))
	}
	init := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(init); err != nil {
			return nil, fmt.Errorf("init: %w", err)
		}
	}
	return &mutTarget{
		w: w, rm: rm, enc: enc.Bytes, n: n, baseline: baseline,
		opts: opts, init: init, args: args, argSet: argSet,
	}, nil
}

// mutate writes the seeded single-bit mutant of the golden image into
// img (which must have the image's length).
func (t *mutTarget) mutate(seed int64, img []byte) {
	rng := rand.New(rand.NewSource(seed))
	copy(img, t.enc)
	bit := rng.Intn(len(img) * 8)
	img[bit/8] ^= 1 << (bit % 8)
}

// newRef builds a reference machine over dec seeded with the initial
// image and entry arguments, plus — for mseed != 0 — the machine-seed
// perturbation: every non-argument register gets a seeded random
// value, and every declared-region byte the workload's Init left
// unwritten gets a seeded random fill. The baseline is verifier-clean
// (no reads of may-uninitialized registers, every address proven
// inside the declared regions), so the golden outcome stays trap-free
// under every machine seed — but a mutant that reads a stray register
// or a stray address now sees seed-dependent noise instead of the
// masking zeros a single fixed initial state offers.
func (t *mutTarget) newRef(dec []encode.DecInstr, target *config.Target, mseed int64) *refmodel.Machine {
	image := refmodel.NewMem()
	for _, pa := range t.init.PageAddrs() {
		image.WriteBytes(pa, t.init.ReadBytes(pa, 1<<12))
	}
	if mseed != 0 {
		rng := rand.New(rand.NewSource(mseed * 0x9E3779B9))
		for _, reg := range t.w.Regions {
			for addr := reg.Lo; addr < reg.Hi; addr++ {
				if prefetch.IsMMIO(addr) || t.init.Defined(addr, 1) {
					continue
				}
				image.SetByte(addr, byte(rng.Intn(256)))
			}
		}
	}
	ref := refmodel.New(dec, *target, image)
	if mseed != 0 {
		rng := rand.New(rand.NewSource(mseed ^ 0x5DEECE66D))
		for r := isa.Reg(2); int(r) < isa.NumRegs; r++ {
			if !t.argSet[r] {
				ref.SetReg(r, rng.Uint32())
			}
		}
	}
	for r, val := range t.args {
		ref.SetReg(r, val)
	}
	return ref
}

// goldenRun executes the pristine binary under one machine seed; a
// trapped golden run is a harness failure, not a finding.
func (t *mutTarget) goldenRun(target *config.Target, mseed int64) (*golden, error) {
	ref := t.newRef(t.baseline, target, mseed)
	if tr := ref.Run(); tr != nil {
		return nil, fmt.Errorf("golden run (machine seed %d) trapped: %v", mseed, tr)
	}
	return &golden{issue: ref.Issue(), regs: ref.Regs(), mem: ref.Mem, mmio: ref.MMIORegs()}, nil
}

// classify runs the static gate over a mutated image: the decoder,
// the stream comparison against the baseline, then the binverify
// static verifier. For StaticMissed mutants the decoded stream is
// returned for the differential stage.
func (t *mutTarget) classify(img []byte, target *config.Target) (StaticOutcome, []encode.DecInstr) {
	dec, err := encode.Decode(img, tmsim.CodeBase, t.n)
	switch {
	case err != nil:
		return StaticRejected, nil
	case streamsEqual(dec, t.baseline):
		return StaticMasked, nil
	case !binverify.Verify(dec, target, t.opts).Clean():
		return StaticFlagged, nil
	}
	return StaticMissed, dec
}
