package faults_test

import (
	"testing"

	"tm3270/internal/faults"
)

// TestDifferentialCampaign runs the full combined campaign (the same
// four workloads and 64 seeded mutants as the static baseline) and
// asserts the headline property: executing statically-missed mutants on
// the reference model and diffing against the golden run strictly
// raises the detection rate over the static verifier alone.
func TestDifferentialCampaign(t *testing.T) {
	res, err := faults.RunDifferentialCampaign(faults.StaticConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	static, combined := res.StaticRate(), res.CombinedRate()
	if combined <= static {
		t.Errorf("combined detection %.3f not above static %.3f", combined, static)
	}
	// The static classification must be byte-identical to the static-only
	// campaign: the differential pass only examines its leftovers.
	ref, err := faults.RunStaticCampaign(faults.StaticConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := static, ref.DetectionRate(); got != want {
		t.Errorf("static rate through the differential campaign %.4f, want %.4f", got, want)
	}
	for i, row := range res.Rows {
		if row.Detected+row.Silent != row.Static[faults.StaticMissed] {
			t.Errorf("%s: detected %d + silent %d != missed %d",
				row.Workload, row.Detected, row.Silent, row.Static[faults.StaticMissed])
		}
		want := ref.Rows[i]
		if row.Workload != want.Workload || row.Static != want.Counts {
			t.Errorf("%s: static classification %v, want %v (%s)",
				row.Workload, row.Static, want.Counts, want.Workload)
		}
	}
}

// TestDifferentialDeterminism: same seeds, same mutants, same rates.
func TestDifferentialDeterminism(t *testing.T) {
	cfg := faults.StaticConfig{Workloads: []string{"memset"}, Mutants: 32}
	a, err := faults.RunDifferentialCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faults.RunDifferentialCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || len(b.Rows) != 1 || a.Rows[0] != b.Rows[0] {
		t.Errorf("campaign not deterministic: %+v vs %+v", a.Rows, b.Rows)
	}
}
