package faults_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"tm3270/internal/campaign"
	"tm3270/internal/faults"
)

// TestMatrixCampaign runs the full mutant × machine-seed matrix and
// asserts the headline properties: the static classification agrees
// with the static-only campaign, every seed partitions the missed
// mutants into detected + silent, and the combined multi-seed rate is
// at least the baseline seed's rate.
func TestMatrixCampaign(t *testing.T) {
	res, err := faults.RunMatrixCampaign(faults.MatrixConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := faults.RunStaticCampaign(faults.StaticConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for o := faults.StaticRejected; o <= faults.StaticMissed; o++ {
		if got, want := res.Static[o], ref.Count(o); got != want {
			t.Errorf("static %v: matrix counted %d, static campaign %d", o, got, want)
		}
	}
	missed := res.Static[faults.StaticMissed]
	if len(res.Seeds) != res.MSeeds {
		t.Fatalf("%d seed rows, want %d", len(res.Seeds), res.MSeeds)
	}
	var baseline float64
	for _, s := range res.Seeds {
		if s.Detected+s.Silent != missed {
			t.Errorf("seed %d: detected %d + silent %d != missed %d",
				s.MSeed, s.Detected, s.Silent, missed)
		}
		if s.MSeed == 0 && missed > 0 {
			baseline = float64(s.Detected) / float64(missed)
		}
	}
	if res.Combined < int(baseline*float64(missed)) {
		t.Errorf("combined %d below baseline seed's %d", res.Combined, int(baseline*float64(missed)))
	}
	if res.Combined+len(res.Silent) != missed {
		t.Errorf("combined %d + silent %d != missed %d", res.Combined, len(res.Silent), missed)
	}
	// The acceptance bar: multi-seed differential detection >= 99% of
	// decodable stream-changing mutants, silent mutants enumerated.
	if rate := res.CombinedRate(); rate < 0.99 {
		t.Errorf("combined detection rate %.3f below 0.99 (silent: %v)", rate, res.Silent)
	}
}

// TestMatrixResumeByteIdentical kills nothing but proves the store
// contract on the mutant matrix: a fresh run into a store and a pure
// cache-read re-run produce byte-identical aggregates.
func TestMatrixResumeByteIdentical(t *testing.T) {
	cfg := faults.MatrixConfig{
		Static: faults.StaticConfig{Workloads: []string{"memset"}, Mutants: 16},
		MSeeds: 2,
	}
	dir := filepath.Join(t.TempDir(), "store")
	runOnce := func() (*faults.MatrixResult, []byte) {
		st, err := campaign.Open(dir, campaign.Shard{}.Label(), cfg.Spec())
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		c := cfg
		c.Store = st
		res, err := faults.RunMatrixCampaign(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.Aggregate.MarshalJSONDeterministic()
		if err != nil {
			t.Fatal(err)
		}
		return res, b
	}
	fresh, fb := runOnce()
	if fresh.Stats.Executed == 0 {
		t.Fatal("fresh run executed no units")
	}
	resumed, rb := runOnce()
	if resumed.Stats.Executed != 0 {
		t.Errorf("resumed run executed %d units, want pure cache read", resumed.Stats.Executed)
	}
	if resumed.Stats.Cached != fresh.Stats.Total {
		t.Errorf("resumed run cached %d of %d units", resumed.Stats.Cached, fresh.Stats.Total)
	}
	if !bytes.Equal(fb, rb) {
		t.Errorf("aggregates differ:\nfresh:\n%s\nresumed:\n%s", fb, rb)
	}
}
