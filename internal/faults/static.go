package faults

import (
	"fmt"
	"io"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/workloads"
)

// StaticOutcome classifies one mutated binary image.
type StaticOutcome int

const (
	// StaticRejected: the mutated image no longer decodes — the template
	// chain or an opcode field broke, and the decoder itself is the gate.
	StaticRejected StaticOutcome = iota
	// StaticMasked: the image decodes to the identical instruction
	// stream (the flip landed in dead padding bits), so there is nothing
	// for any verifier to see.
	StaticMasked
	// StaticFlagged: the image decodes to a different stream and the
	// static verifier reports at least one diagnostic — the corruption
	// is caught before a single cycle executes.
	StaticFlagged
	// StaticMissed: the image decodes to a different stream that the
	// verifier considers well-formed (e.g. one register operand swapped
	// for another live one).
	StaticMissed
)

// String names the outcome for campaign reports.
func (o StaticOutcome) String() string {
	switch o {
	case StaticRejected:
		return "rejected"
	case StaticMasked:
		return "masked"
	case StaticFlagged:
		return "flagged"
	}
	return "missed"
}

// StaticConfig parameterizes the static mutation campaign. Zero fields
// take the documented defaults.
type StaticConfig struct {
	// Workloads are registry names (default: the runtime campaign set).
	Workloads []string
	// Mutants is the number of seeded single-bit image flips per
	// workload (default 64).
	Mutants int
	// Params sizes the workloads (default workloads.Small()).
	Params *workloads.Params
	// Target is the processor configuration (default config.TM3270()).
	Target *config.Target
}

func (c *StaticConfig) fill() {
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"memset", "memcpy", "filter", "blockwalk_pf"}
	}
	if c.Mutants <= 0 {
		c.Mutants = 64
	}
	if c.Params == nil {
		p := workloads.Small()
		c.Params = &p
	}
	if c.Target == nil {
		t := config.TM3270()
		c.Target = &t
	}
}

// StaticRow aggregates one workload's mutants by outcome.
type StaticRow struct {
	Workload string
	Bytes    int // image size the flips sample from
	Mutants  int
	Counts   [4]int // indexed by StaticOutcome
}

// StaticResult is the outcome of a full static mutation campaign.
type StaticResult struct {
	Rows []StaticRow
}

// Count sums one outcome over all workloads.
func (r *StaticResult) Count(o StaticOutcome) int {
	n := 0
	for i := range r.Rows {
		n += r.Rows[i].Counts[o]
	}
	return n
}

// DetectionRate is the fraction of still-decodable, stream-changing
// mutants the verifier flags: flagged / (flagged + missed). Rejected
// and masked mutants never reach the verifier.
func (r *StaticResult) DetectionRate() float64 {
	f, m := r.Count(StaticFlagged), r.Count(StaticMissed)
	if f+m == 0 {
		return 0
	}
	return float64(f) / float64(f+m)
}

// PrintSummary renders the per-workload rows and the aggregate
// static-detection rate.
func (r *StaticResult) PrintSummary(w io.Writer) {
	fmt.Fprintf(w, "%-14s %8s %9s %8s %8s %8s\n",
		"workload", "mutants", "rejected", "masked", "flagged", "missed")
	for i := range r.Rows {
		row := &r.Rows[i]
		fmt.Fprintf(w, "%-14s %8d %9d %8d %8d %8d\n", row.Workload, row.Mutants,
			row.Counts[StaticRejected], row.Counts[StaticMasked],
			row.Counts[StaticFlagged], row.Counts[StaticMissed])
	}
	fmt.Fprintf(w, "static mutation campaign: %d mutants, %d rejected by decode, %d masked, %d flagged, %d missed; static detection rate %.1f%% of decodable stream-changing mutants\n",
		r.Count(StaticRejected)+r.Count(StaticMasked)+r.Count(StaticFlagged)+r.Count(StaticMissed),
		r.Count(StaticRejected), r.Count(StaticMasked),
		r.Count(StaticFlagged), r.Count(StaticMissed), 100*r.DetectionRate())
}

// RunStaticCampaign flips one seeded random bit per mutant in each
// workload's encoded image and classifies what catches the corruption:
// the decoder, the binverify static verifier, or nothing. The baseline
// (unmutated) image must decode and verify clean, so every diagnostic
// on a mutant is attributable to the flip.
func RunStaticCampaign(cfg StaticConfig, w io.Writer) (*StaticResult, error) {
	cfg.fill()
	res := &StaticResult{}
	for _, name := range cfg.Workloads {
		row, err := staticOne(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("faults: static %s: %w", name, err)
		}
		res.Rows = append(res.Rows, *row)
		if w != nil {
			fmt.Fprintf(w, "%-14s %d mutants over %d bytes: %d rejected, %d masked, %d flagged, %d missed\n",
				row.Workload, row.Mutants, row.Bytes,
				row.Counts[StaticRejected], row.Counts[StaticMasked],
				row.Counts[StaticFlagged], row.Counts[StaticMissed])
		}
	}
	return res, nil
}

func staticOne(name string, cfg StaticConfig) (*StaticRow, error) {
	mt, err := newMutTarget(name, &cfg)
	if err != nil {
		return nil, err
	}
	row := &StaticRow{Workload: name, Bytes: len(mt.enc), Mutants: cfg.Mutants}
	img := make([]byte, len(mt.enc))
	for seed := int64(1); seed <= int64(cfg.Mutants); seed++ {
		mt.mutate(seed, img)
		o, _ := mt.classify(img, cfg.Target)
		row.Counts[o]++
	}
	return row, nil
}

// streamsEqual compares two decoded streams slot by slot.
func streamsEqual(a, b []encode.DecInstr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Size != b[i].Size {
			return false
		}
		for s := 0; s < 5; s++ {
			x, y := a[i].Slots[s], b[i].Slots[s]
			switch {
			case (x == nil) != (y == nil):
				return false
			case x != nil && *x != *y:
				return false
			}
		}
	}
	return true
}
