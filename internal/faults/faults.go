// Package faults provides seeded, deterministic fault injection for the
// machine model: single-bit corruption of the memory image and of
// cache-line fills, dropped and delayed region prefetches, and
// bus-latency spikes. Injectors plug into the small fault interfaces of
// mem.Func, mem.BIU and dcache.DCache; a campaign of seeded runs then
// asserts that every injected fault is either detected (a trap or a
// divergence against the sequential reference) or provably masked —
// never a hang, never a panic.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"tm3270/internal/tmsim"
)

// Kind names an injector family.
type Kind string

const (
	// BitFlip flips one bit of the initial memory image (a DDR cell
	// upset present before the kernel starts).
	BitFlip Kind = "bitflip"
	// LoadFlip flips one bit of a loaded value in flight (a transient
	// read-path upset that leaves memory itself intact).
	LoadFlip Kind = "loadflip"
	// LineFlip flips one bit of a demand-filled cache line's backing
	// bytes mid-run (a refill-path upset).
	LineFlip Kind = "lineflip"
	// DropPrefetch suppresses region prefetches (a refill engine that
	// loses requests).
	DropPrefetch Kind = "droppf"
	// DelayPrefetch delays region-prefetch completion (a congested
	// refill engine).
	DelayPrefetch Kind = "delaypf"
	// BusDelay adds latency spikes to bus reads (refresh storms,
	// arbitration stalls).
	BusDelay Kind = "busdelay"
)

// Kinds lists every injector family.
func Kinds() []Kind {
	return []Kind{BitFlip, LoadFlip, LineFlip, DropPrefetch, DelayPrefetch, BusDelay}
}

// Spec selects and parameterizes one injector.
type Spec struct {
	Kind Kind
	// Rate is the per-opportunity injection probability for the
	// mid-run kinds (0 < Rate <= 1; default 0.01).
	Rate float64
	// Delay is the injected latency in CPU cycles for the delaying
	// kinds (default 200).
	Delay int64
}

// ParseSpec parses an injector spec of the form "kind", "kind:rate" or
// "kind:rate:delay" — e.g. "bitflip", "droppf:0.5", "busdelay:0.1:400".
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	sp := Spec{Kind: Kind(parts[0]), Rate: 0.01, Delay: 200}
	switch sp.Kind {
	case BitFlip, LoadFlip, LineFlip, DropPrefetch, DelayPrefetch, BusDelay:
	default:
		return Spec{}, fmt.Errorf("faults: unknown injector %q (have %v)", parts[0], Kinds())
	}
	if len(parts) > 1 && parts[1] != "" {
		r, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || r <= 0 || r > 1 {
			return Spec{}, fmt.Errorf("faults: bad rate %q (want 0 < rate <= 1)", parts[1])
		}
		sp.Rate = r
	}
	if len(parts) > 2 && parts[2] != "" {
		d, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || d < 1 {
			return Spec{}, fmt.Errorf("faults: bad delay %q", parts[2])
		}
		sp.Delay = d
	}
	if len(parts) > 3 {
		return Spec{}, fmt.Errorf("faults: malformed spec %q", s)
	}
	return sp, nil
}

// String renders the spec in ParseSpec form.
func (s Spec) String() string {
	return fmt.Sprintf("%s:%g:%d", s.Kind, s.Rate, s.Delay)
}

// Event is one injected fault occurrence.
type Event struct {
	Addr uint32 // corrupted address (bit flips) or line address
	Bit  uint   // flipped bit within the byte (bit flips)
	Info string // human-readable description
}

// Injector is one armed fault source. It implements the fault hook
// interfaces of mem.Func, mem.BIU and dcache.DCache; Arm plugs it into
// the right one for its kind. The same (spec, seed) pair always
// produces the same injection sequence against the same execution.
type Injector struct {
	Spec Spec
	rng  *rand.Rand
	mach *tmsim.Machine

	// Events logs every injected fault, in injection order.
	Events []Event
}

// New builds an injector from a spec and a seed.
func New(spec Spec, seed int64) *Injector {
	return &Injector{Spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// Arm plugs the injector into the machine's fault hooks. For BitFlip it
// corrupts the initial image immediately; the machine must already hold
// its initialized memory image.
func (in *Injector) Arm(m *tmsim.Machine) {
	in.mach = m
	switch in.Spec.Kind {
	case BitFlip:
		in.flipImageBit()
	case LoadFlip:
		m.Mem.Fault = in
	case LineFlip, DropPrefetch, DelayPrefetch:
		m.DC.Fault = in
	case BusDelay:
		m.BIU.Fault = in
	}
}

// Disarm unplugs the injector so post-run output checks observe the
// machine's memory without further interference.
func (in *Injector) Disarm(m *tmsim.Machine) {
	if m.Mem.Fault == in {
		m.Mem.Fault = nil
	}
	if m.DC.Fault == in {
		m.DC.Fault = nil
	}
	if m.BIU.Fault == in {
		m.BIU.Fault = nil
	}
}

// flipImageBit corrupts one bit of one populated page, chosen
// deterministically from the seed.
func (in *Injector) flipImageBit() {
	pages := in.mach.Mem.PageAddrs()
	if len(pages) == 0 {
		return
	}
	addr := pages[in.rng.Intn(len(pages))] + uint32(in.rng.Intn(4096))
	bit := uint(in.rng.Intn(8))
	in.mach.Mem.FlipBit(addr, bit)
	in.Events = append(in.Events, Event{Addr: addr, Bit: bit,
		Info: fmt.Sprintf("image bit flip at %#x bit %d", addr, bit)})
}

// TapLoad implements mem.LoadFault (LoadFlip): flip one bit of the
// value in flight without touching the stored bytes.
func (in *Injector) TapLoad(addr uint32, n int, v uint64) uint64 {
	if in.Spec.Kind != LoadFlip || in.rng.Float64() >= in.Spec.Rate {
		return v
	}
	bit := uint(in.rng.Intn(8 * n))
	in.Events = append(in.Events, Event{Addr: addr, Bit: bit,
		Info: fmt.Sprintf("load of %d bytes at %#x flipped bit %d", n, addr, bit)})
	return v ^ 1<<bit
}

// ReadDelay implements mem.ReadFault (BusDelay).
func (in *Injector) ReadDelay(bytes int, prefetch bool) int64 {
	if in.Spec.Kind != BusDelay || in.rng.Float64() >= in.Spec.Rate {
		return 0
	}
	d := 1 + in.rng.Int63n(in.Spec.Delay)
	in.Events = append(in.Events, Event{
		Info: fmt.Sprintf("bus read delayed %d cycles (%d bytes, prefetch=%v)", d, bytes, prefetch)})
	return d
}

// Prefetch implements dcache.Fault (DropPrefetch / DelayPrefetch).
func (in *Injector) Prefetch(lineAddr uint32) (bool, int64) {
	switch in.Spec.Kind {
	case DropPrefetch:
		if in.rng.Float64() < in.Spec.Rate {
			in.Events = append(in.Events, Event{Addr: lineAddr,
				Info: fmt.Sprintf("prefetch of line %#x dropped", lineAddr)})
			return true, 0
		}
	case DelayPrefetch:
		if in.rng.Float64() < in.Spec.Rate {
			d := 1 + in.rng.Int63n(in.Spec.Delay)
			in.Events = append(in.Events, Event{Addr: lineAddr,
				Info: fmt.Sprintf("prefetch of line %#x delayed %d cycles", lineAddr, d)})
			return false, d
		}
	}
	return false, 0
}

// Fill implements dcache.Fault (LineFlip): corrupt one bit of the
// freshly filled line's backing bytes.
func (in *Injector) Fill(lineAddr uint32) {
	if in.Spec.Kind != LineFlip || in.rng.Float64() >= in.Spec.Rate {
		return
	}
	lineBytes := in.mach.Target.DCache.LineBytes
	addr := lineAddr + uint32(in.rng.Intn(lineBytes))
	bit := uint(in.rng.Intn(8))
	in.mach.Mem.FlipBit(addr, bit)
	in.Events = append(in.Events, Event{Addr: addr, Bit: bit,
		Info: fmt.Sprintf("cache-line fill bit flip at %#x bit %d", addr, bit)})
}

// CorruptedAddrs returns the set of addresses the injector flipped
// directly. Campaign classification excludes them when deciding whether
// a fault propagated beyond its injection site.
func (in *Injector) CorruptedAddrs() map[uint32]bool {
	if in.Spec.Kind != BitFlip && in.Spec.Kind != LineFlip {
		return nil
	}
	out := make(map[uint32]bool, len(in.Events))
	for _, e := range in.Events {
		out[e.Addr] = true
	}
	return out
}
