package encode

import (
	"fmt"

	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
)

// SuperExtOpcode is the reserved opcode of the second half of a
// two-slot operation, which carries the third and fourth sources and
// the second destination (Section 2.2.1: the extra operands of
// SUPER_LD32R are "encoded as part of the second operation in the
// operation pair").
const SuperExtOpcode = 126

// Template compression codes (one 2-bit field per issue slot).
const (
	code26     = 0
	code34     = 1
	code42     = 2
	codeAbsent = 3
)

// sizeBits maps a compression code to its operation size.
var sizeBits = [3]int{26, 34, 42}

// 42-bit encodings start with a 3-bit marker selecting long-immediate
// forms; marker 0 is the regular guarded form.
const (
	mkRegular = 0
	mkIImm    = 1
	mkJmpI    = 2
	mkJmpT    = 3
	mkJmpF    = 4
	// Unguarded immediate forms trade the guard field for an 18-bit
	// immediate (needed when compressible operations are forced into
	// uncompressed jump-target instructions).
	mkImmU   = 5
	mkStoreU = 6
)

// Encoded is the binary image of a scheduled kernel.
type Encoded struct {
	Base  uint32 // byte address of the first instruction
	Bytes []byte
	// Addr[i] is the byte address of instruction i; Size[i] its length.
	Addr []uint32
	Size []int
}

// TotalBytes returns the code size.
func (e *Encoded) TotalBytes() int { return len(e.Bytes) }

// slotEnc is the planned encoding of one occupied slot.
type slotEnc struct {
	code int // code26/code34/code42
	op   *prog.Op
	ext  bool // second half of a two-slot operation
}

// Encode lays out and encodes scheduled code at the given base address
// using the physical registers of the allocation map.
func Encode(c *sched.Code, m *regalloc.Map, base uint32) (*Encoded, error) {
	if isa.NumOpcodes > SuperExtOpcode {
		return nil, fmt.Errorf("encode: opcode space overflows the 7-bit field")
	}
	// Every label is a potential branch target and must be uncompressed;
	// so must the entry instruction.
	uncompressed := make([]bool, len(c.Instrs))
	if len(uncompressed) > 0 {
		uncompressed[0] = true
	}
	for _, idx := range c.Labels {
		if idx < len(c.Instrs) {
			uncompressed[idx] = true
		}
	}

	// Plan per-slot encodings and sizes.
	plans := make([][5]*slotEnc, len(c.Instrs))
	sizes := make([]int, len(c.Instrs))
	for i := range c.Instrs {
		bits := 10 // template field
		for s := 0; s < 5; s++ {
			so := c.Instrs[i].Slots[s]
			if so.Op == nil {
				if uncompressed[i] {
					// Padding NOP at full width.
					plans[i][s] = &slotEnc{code: code42, op: nil}
					bits += 42
				}
				continue
			}
			se := &slotEnc{op: so.Op, ext: so.Second}
			var err error
			se.code, err = chooseCode(so.Op, so.Second, m, uncompressed[i])
			if err != nil {
				return nil, fmt.Errorf("encode %s instr %d slot %d: %w", c.Name, i, s+1, err)
			}
			plans[i][s] = se
			bits += sizeBits[se.code]
		}
		sizes[i] = (bits + 7) / 8
	}

	// Addr carries one extra entry: the end address, so that labels on
	// an empty final block (jumps to the program end) resolve.
	enc := &Encoded{Base: base, Addr: make([]uint32, len(c.Instrs)+1), Size: sizes}
	addr := base
	for i := range c.Instrs {
		enc.Addr[i] = addr
		addr += uint32(sizes[i])
	}
	enc.Addr[len(c.Instrs)] = addr

	// Emit.
	w := &bitWriter{}
	for i := range c.Instrs {
		w.write(uint64(templateFor(plans, i+1)), 10)
		for s := 0; s < 5; s++ {
			se := plans[i][s]
			if se == nil {
				continue
			}
			if err := emitSlot(w, se, m, c, enc); err != nil {
				return nil, fmt.Errorf("encode %s instr %d slot %d: %w", c.Name, i, s+1, err)
			}
		}
		w.padToByte()
		if got := len(w.buf); got != int(enc.Addr[i]-base)+sizes[i] {
			return nil, fmt.Errorf("encode %s: instr %d layout drift: %d bytes, want %d",
				c.Name, i, got, int(enc.Addr[i]-base)+sizes[i])
		}
	}
	enc.Bytes = w.buf
	return enc, nil
}

// templateFor builds the 10-bit template describing instruction i (the
// template is carried by instruction i-1). Past the end, all slots read
// as absent.
func templateFor(plans [][5]*slotEnc, i int) int {
	t := 0
	for s := 0; s < 5; s++ {
		code := codeAbsent
		if i < len(plans) && plans[i][s] != nil {
			code = plans[i][s].code
		}
		t = t<<2 | code
	}
	return t
}

// chooseCode picks the smallest encoding for an operation, honoring the
// uncompressed constraint of jump-target instructions.
func chooseCode(op *prog.Op, ext bool, m *regalloc.Map, uncompressed bool) (int, error) {
	info := op.Info()
	guard := m.Reg(op.Guard)
	imm := int64(int32(op.Imm))
	if uncompressed {
		// Still validate that the 42-bit form can carry the immediate.
		switch {
		case ext || info.IsJump || op.Opcode == isa.OpIIMM || !info.HasImm:
		case info.IsStore || info.NSrc <= 1:
			lim := 18
			if guard != isa.R1 {
				lim = 11
			}
			if !fitsSigned(imm, lim) {
				return 0, fmt.Errorf("%s: immediate %d does not fit the uncompressed form", info.Name, imm)
			}
		default:
			if op.Imm > 15 {
				return 0, fmt.Errorf("%s: immediate %d does not fit the uncompressed form", info.Name, imm)
			}
		}
		return code42, nil
	}

	if info.IsJump || op.Opcode == isa.OpIIMM && !fitsSigned(imm, 13) {
		return code42, nil
	}
	if ext {
		// The extension half has at most two sources and one destination
		// and is never guarded: 34 bits always fit.
		return code34, nil
	}
	// 26-bit compact form.
	if guard == isa.R1 && op.Opcode < 64 && info.NSrc <= 2 && !info.TwoSlot &&
		(!info.HasImm || op.Imm == 0) && regsBelow(op, m, 64) {
		return code26, nil
	}
	// 34-bit unguarded forms.
	if guard == isa.R1 {
		if info.HasImm && info.NSrc <= 1 && !info.IsStore {
			if fitsSigned(imm, 13) {
				return code34, nil
			}
		} else if !info.HasImm || op.Imm <= 63 {
			return code34, nil
		}
	}
	// 42-bit regular form. Unguarded immediate shapes use the wide
	// 18-bit forms (markers 5/6); guarded ones carry 11 bits.
	ok := false
	switch {
	case info.IsStore:
		if guard == isa.R1 {
			ok = fitsSigned(imm, 18)
		} else {
			ok = fitsSigned(imm, 11)
		}
	case info.HasImm && info.NSrc <= 1:
		if guard == isa.R1 {
			ok = fitsSigned(imm, 18)
		} else {
			ok = fitsSigned(imm, 11)
		}
	default:
		ok = !info.HasImm || op.Imm <= 15
	}
	if !ok {
		return 0, fmt.Errorf("%s: immediate %d does not fit any encoding", info.Name, imm)
	}
	return code42, nil
}

func regsBelow(op *prog.Op, m *regalloc.Map, limit int) bool {
	info := op.Info()
	for s := 0; s < min(info.NSrc, 2); s++ {
		if int(m.Reg(op.Src[s])) >= limit {
			return false
		}
	}
	for d := 0; d < min(info.NDest, 1); d++ {
		if int(m.Reg(op.Dest[d])) >= limit {
			return false
		}
	}
	return true
}

func fitsSigned(v int64, bits int) bool {
	lim := int64(1) << (bits - 1)
	return v >= -lim && v < lim
}

// emitSlot writes one slot's encoding.
func emitSlot(w *bitWriter, se *slotEnc, m *regalloc.Map, c *sched.Code, enc *Encoded) error {
	if se.op == nil {
		// Full-width padding NOP (regular 42-bit form of opcode 0).
		w.write(mkRegular, 3)
		w.write(uint64(isa.OpNOP), 7)
		w.write(uint64(isa.R1), 7)
		w.write(0, 42-3-7-7)
		return nil
	}
	op := se.op
	info := op.Info()
	guard := m.Reg(op.Guard)

	opcode := uint64(op.Opcode)
	s1, s2 := uint64(m.Reg(op.Src[0])), uint64(m.Reg(op.Src[1]))
	d := uint64(0)
	if info.NDest > 0 {
		d = uint64(m.Reg(op.Dest[0]))
	}
	if se.ext {
		// Second half: sources 3 and 4, destination 2.
		opcode = SuperExtOpcode
		s1, s2 = uint64(m.Reg(op.Src[2])), uint64(m.Reg(op.Src[3]))
		d = 0
		if info.NDest > 1 {
			d = uint64(m.Reg(op.Dest[1]))
		}
	}

	switch se.code {
	case code26:
		w.write(opcode, 6)
		w.write(s1, 6)
		w.write(s2, 6)
		w.write(d, 6)
		w.write(0, 2)
	case code34:
		w.write(opcode, 7)
		if !se.ext && info.HasImm && info.NSrc <= 1 && !info.IsStore {
			// Shape B: one source, destination, 13-bit signed immediate.
			w.write(s1, 7)
			w.write(d, 7)
			w.write(uint64(op.Imm)&0x1fff, 13)
		} else {
			// Shape A: two sources, destination, 6-bit immediate.
			w.write(s1, 7)
			w.write(s2, 7)
			w.write(d, 7)
			w.write(uint64(op.Imm)&0x3f, 6)
		}
	case code42:
		if se.ext {
			w.write(mkRegular, 3)
			w.write(opcode, 7)
			w.write(uint64(isa.R1), 7)
			w.write(s1, 7)
			w.write(s2, 7)
			w.write(d, 7)
			w.write(0, 4)
			return nil
		}
		switch {
		case op.Opcode == isa.OpIIMM:
			w.write(mkIImm, 3)
			w.write(d, 7)
			w.write(uint64(op.Imm), 32)
		case info.IsJump:
			mk := uint64(mkJmpI)
			switch op.Opcode {
			case isa.OpJMPT:
				mk = mkJmpT
			case isa.OpJMPF:
				mk = mkJmpF
			}
			ti, ok := c.Labels[op.Target]
			if !ok {
				return fmt.Errorf("jump to unknown label %q", op.Target)
			}
			w.write(mk, 3)
			w.write(uint64(guard), 7)
			w.write(uint64(enc.Addr[ti]), 32)
		case info.IsStore && guard == isa.R1:
			w.write(mkStoreU, 3)
			w.write(opcode, 7)
			w.write(s1, 7)
			w.write(s2, 7)
			w.write(uint64(op.Imm)&0x3ffff, 18)
		case info.IsStore:
			w.write(mkRegular, 3)
			w.write(opcode, 7)
			w.write(uint64(guard), 7)
			w.write(s1, 7)
			w.write(s2, 7)
			w.write(uint64(op.Imm)&0x7ff, 11)
		case info.HasImm && info.NSrc <= 1 && guard == isa.R1:
			w.write(mkImmU, 3)
			w.write(opcode, 7)
			w.write(s1, 7)
			w.write(d, 7)
			w.write(uint64(op.Imm)&0x3ffff, 18)
		case info.HasImm && info.NSrc <= 1:
			w.write(mkRegular, 3)
			w.write(opcode, 7)
			w.write(uint64(guard), 7)
			w.write(s1, 7)
			w.write(d, 7)
			w.write(uint64(op.Imm)&0x7ff, 11)
		default:
			w.write(mkRegular, 3)
			w.write(opcode, 7)
			w.write(uint64(guard), 7)
			w.write(s1, 7)
			w.write(s2, 7)
			w.write(d, 7)
			w.write(uint64(op.Imm)&0xf, 4)
		}
	}
	return nil
}
