package encode_test

import (
	"math/rand"
	"testing"

	"tm3270/internal/binverify"
	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/progen"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
)

// FuzzDecode feeds arbitrary byte streams to the decoder. Decoded
// binaries are untrusted input: any malformed stream — truncation,
// undefined opcodes, reserved markers — must come back as an error,
// never a panic or slice overrun. The seed corpus holds a valid
// encoded kernel plus inputs that crashed earlier decoder revisions.
// Whatever decodes successfully is additionally pushed through the
// whole-program static verifier, which must classify it with
// structured diagnostics — never panic — no matter how degenerate the
// instruction stream is.
func FuzzDecode(f *testing.F) {
	valid := encodedKernel(f)
	f.Add(valid, uint8(8))
	f.Add(valid[:1], uint8(4)) // truncated mid-template
	f.Add(valid[:3], uint8(4)) // truncated mid-slot
	f.Add([]byte{}, uint8(1))  // empty image
	// Entry slot in the regular 42-bit form carrying undefined opcode
	// 125: 10-bit template, 3-bit marker 0, 7-bit opcode 1111101.
	// Formerly panicked inside isa.Info.
	f.Add([]byte{0xff, 0xc7, 0xd0}, uint8(1))
	// Reserved 42-bit marker 7 right after the template.
	f.Add([]byte{0xff, 0xf8}, uint8(1))
	// Generator-produced kernels: real encoded images with loops,
	// guarded ops, two-slot supers and MMIO traffic reach much deeper
	// template chains than the tiny hand-built kernel, so bit flips on
	// them explore the decoder's compressed forms from valid starts.
	for seed := int64(1); seed <= 4; seed++ {
		img, n := generatedKernel(f, seed)
		f.Add(img, n)
	}
	f.Fuzz(func(t *testing.T, img []byte, n uint8) {
		dec, err := encode.Decode(img, 0x4000, int(n)%64)
		if err != nil {
			return
		}
		// On success every returned instruction must be well-formed.
		for i := range dec {
			if dec[i].Size <= 0 {
				t.Fatalf("instr %d: non-positive size %d", i, dec[i].Size)
			}
		}
		// The static verifier accepts any decodable stream and reports
		// through diagnostics only.
		tgt := config.TM3270()
		rep := binverify.Verify(dec, &tgt, nil)
		for _, d := range rep.Diags {
			if d.Index < 0 || d.Index >= len(dec) {
				t.Fatalf("diagnostic index %d outside stream of %d: %s",
					d.Index, len(dec), d.String())
			}
			if d.Msg == "" || d.Check == "" {
				t.Fatalf("unstructured diagnostic: %+v", d)
			}
		}
	})
}

// encodedKernel builds a small valid kernel image for the fuzz corpus.
func encodedKernel(f *testing.F) []byte {
	b := prog.NewBuilder("seed")
	x, y, z := b.Reg(), b.Reg(), b.Reg()
	b.Imm(x, 7)
	b.Imm(y, 9)
	b.Label("top")
	b.Add(z, x, y)
	b.St32D(x, 0, z)
	p := b.MustProgram()
	code, err := sched.Schedule(p, config.TM3270())
	if err != nil {
		f.Fatal(err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := encode.Encode(code, rm, 0x4000)
	if err != nil {
		f.Fatal(err)
	}
	return enc.Bytes
}

// generatedKernel encodes one progen program for the fuzz corpus and
// returns its image with the instruction count capped to the corpus
// entry's modulus.
func generatedKernel(f *testing.F, seed int64) ([]byte, uint8) {
	tgt := config.TM3270()
	p := progen.Generate(progen.Config{Seed: seed, Target: &tgt, Ops: 48})
	code, err := sched.Schedule(p, tgt)
	if err != nil {
		f.Fatal(err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := encode.Encode(code, rm, 0x4000)
	if err != nil {
		f.Fatal(err)
	}
	n := len(code.Instrs)
	if n > 63 {
		n = 63 // the harness decodes int(n)%64 instructions
	}
	return enc.Bytes, uint8(n)
}

// TestFuzzRoundTrip builds random programs spanning every encoding
// shape (compact, wide-register, immediate widths, guarded forms,
// stores, supers, jumps), schedules and encodes them, then decodes the
// binary and compares every field.
func TestFuzzRoundTrip(t *testing.T) {
	ops := []isa.Opcode{
		isa.OpIADD, isa.OpISUB, isa.OpBITXOR, isa.OpIMUL, isa.OpQUADAVG,
		isa.OpIFIR16, isa.OpDSPIDUALADD, isa.OpMERGEMSB, isa.OpICLZ,
		isa.OpSEX8, isa.OpPACK16LSB, isa.OpUME8UU, isa.OpFADD, isa.OpFMUL,
	}
	immOps := []struct {
		oc       isa.Opcode
		min, max int32
	}{
		{isa.OpIADDI, -4096, 4095},
		{isa.OpASLI, 0, 31},
		{isa.OpICLIPI, 0, 30},
		{isa.OpLD32D, -1024, 1023},
		{isa.OpULD8D, -1024, 1023},
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := prog.NewBuilder("fuzz")
		// Mix low and high register numbers to cover both the 6-bit
		// compact and 7-bit wide register fields.
		pool := b.Regs(8 + rng.Intn(90))
		pick := func() prog.VReg { return pool[rng.Intn(len(pool))] }
		for n := 0; n < 30; n++ {
			switch rng.Intn(6) {
			case 0: // plain RR
				oc := ops[rng.Intn(len(ops))]
				info := isa.Info(oc)
				op := prog.Op{Opcode: oc}
				for s := 0; s < info.NSrc; s++ {
					op.Src[s] = pick()
				}
				op.Dest[0] = pick()
				if rng.Intn(3) == 0 {
					op.Guard = pick()
				}
				b.Emit(op)
			case 1: // immediate forms
				io := immOps[rng.Intn(len(immOps))]
				imm := io.min + rng.Int31n(io.max-io.min+1)
				op := prog.Op{Opcode: io.oc, Imm: uint32(imm)}
				op.Src[0] = pick()
				op.Dest[0] = pick()
				if rng.Intn(4) == 0 && imm >= -1024 && imm <= 1023 {
					op.Guard = pick()
				}
				b.Emit(op)
			case 2: // 32-bit constant
				b.Imm(pick(), rng.Uint32())
			case 3: // store, optionally guarded
				op := b.St32D(pick(), int32(rng.Intn(64)), pick())
				if rng.Intn(3) == 0 {
					op.WithGuard(pick())
				}
			case 4: // two-slot super (distinct destinations required)
				d1 := pick()
				d2 := pick()
				for d2 == d1 {
					d2 = pick()
				}
				b.SuperDualIMix(d1, d2, pick(), pick(), pick(), pick())
			case 5: // small immediate compare
				b.LesI(pick(), pick(), int32(rng.Intn(100)))
			}
		}
		p := b.MustProgram()
		code, err := sched.Schedule(p, config.TM3270())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rm, err := regalloc.Allocate(p)
		if err != nil {
			// Register-heavy seeds may overflow; that is a legitimate
			// loud failure, not an encoding bug.
			continue
		}
		enc, err := encode.Encode(code, rm, 0x4000)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		dec, err := encode.Decode(enc.Bytes, enc.Base, len(code.Instrs))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		for i := range dec {
			for s := 0; s < 5; s++ {
				so := code.Instrs[i].Slots[s]
				d := dec[i].Slots[s]
				if so.Op == nil {
					continue
				}
				if d == nil {
					t.Fatalf("seed %d instr %d slot %d: lost op", seed, i, s+1)
				}
				checkSlot(t, i, s, so, d, rm, code, enc)
			}
		}
	}
}
