package encode

import (
	"fmt"

	"tm3270/internal/isa"
)

// DecOp is one decoded slot operation. Two-slot operations appear as
// their main half plus a SuperExtOpcode half in the following slot.
type DecOp struct {
	Opcode uint16 // isa.Opcode, or SuperExtOpcode for extension halves
	Guard  isa.Reg
	S1, S2 isa.Reg
	D      isa.Reg
	Imm    uint32 // sign-extended to 32 bits where the field is signed
	Target uint32 // jump target byte address
}

// IsExt reports whether this is the extension half of a two-slot op.
func (d *DecOp) IsExt() bool { return d.Opcode == SuperExtOpcode }

// DecInstr is one decoded VLIW instruction.
type DecInstr struct {
	Addr  uint32
	Size  int
	Slots [5]*DecOp
}

// Decode reads n instructions from the binary image. The first
// instruction must be uncompressed (every kernel entry is a jump
// target). Subsequent instruction shapes follow the template chain.
func Decode(img []byte, base uint32, n int) ([]DecInstr, error) {
	r := &bitReader{buf: img}
	out := make([]DecInstr, 0, n)
	// The entry instruction is uncompressed: all five slots at 42 bits.
	codes := [5]int{code42, code42, code42, code42, code42}
	addr := base
	for i := 0; i < n; i++ {
		r.seekByte(int(addr - base))
		tmpl, err := r.read(10)
		if err != nil {
			return nil, err
		}
		in := DecInstr{Addr: addr}
		bits := 10
		for s := 0; s < 5; s++ {
			if codes[s] == codeAbsent {
				continue
			}
			op, err := decodeSlot(r, codes[s])
			if err != nil {
				return nil, fmt.Errorf("instr %d slot %d: %w", i, s+1, err)
			}
			in.Slots[s] = op
			bits += sizeBits[codes[s]]
		}
		in.Size = (bits + 7) / 8
		out = append(out, in)
		addr += uint32(in.Size)
		// The template we just read describes the next instruction.
		for s := 4; s >= 0; s-- {
			codes[s] = int(tmpl & 3)
			tmpl >>= 2
		}
	}
	return out, nil
}

func signExtend(v uint64, bits int) uint32 {
	shift := 64 - uint(bits)
	return uint32(int64(v<<shift) >> shift)
}

func decodeSlot(r *bitReader, code int) (*DecOp, error) {
	d := &DecOp{Guard: isa.R1}
	switch code {
	case code26:
		op, err := r.read(6)
		if err != nil {
			return nil, err
		}
		s1, _ := r.read(6)
		s2, _ := r.read(6)
		dd, _ := r.read(6)
		if _, err := r.read(2); err != nil {
			return nil, err
		}
		if _, _, err := slotInfo(uint16(op)); err != nil {
			return nil, err
		}
		d.Opcode = uint16(op)
		d.S1, d.S2, d.D = isa.Reg(s1), isa.Reg(s2), isa.Reg(dd)
		return d, nil

	case code34:
		op, err := r.read(7)
		if err != nil {
			return nil, err
		}
		d.Opcode = uint16(op)
		info, isExt, err := slotInfo(uint16(op))
		if err != nil {
			return nil, err
		}
		if !isExt && info.HasImm && info.NSrc <= 1 && !info.IsStore {
			s1, _ := r.read(7)
			dd, _ := r.read(7)
			imm, err := r.read(13)
			if err != nil {
				return nil, err
			}
			d.S1, d.D, d.Imm = isa.Reg(s1), isa.Reg(dd), signExtend(imm, 13)
			return d, nil
		}
		s1, _ := r.read(7)
		s2, _ := r.read(7)
		dd, _ := r.read(7)
		imm, err := r.read(6)
		if err != nil {
			return nil, err
		}
		d.S1, d.S2, d.D, d.Imm = isa.Reg(s1), isa.Reg(s2), isa.Reg(dd), uint32(imm)
		return d, nil

	case code42:
		mk, err := r.read(3)
		if err != nil {
			return nil, err
		}
		switch mk {
		case mkIImm:
			dd, _ := r.read(7)
			imm, err := r.read(32)
			if err != nil {
				return nil, err
			}
			d.Opcode = uint16(isa.OpIIMM)
			d.D, d.Imm = isa.Reg(dd), uint32(imm)
			return d, nil
		case mkJmpI, mkJmpT, mkJmpF:
			g, _ := r.read(7)
			tgt, err := r.read(32)
			if err != nil {
				return nil, err
			}
			switch mk {
			case mkJmpI:
				d.Opcode = uint16(isa.OpJMPI)
			case mkJmpT:
				d.Opcode = uint16(isa.OpJMPT)
			default:
				d.Opcode = uint16(isa.OpJMPF)
			}
			d.Guard, d.Target = isa.Reg(g), uint32(tgt)
			return d, nil
		case mkImmU:
			op, err := r.read(7)
			if err != nil {
				return nil, err
			}
			s1, _ := r.read(7)
			dd, _ := r.read(7)
			imm, err := r.read(18)
			if err != nil {
				return nil, err
			}
			if _, _, err := slotInfo(uint16(op)); err != nil {
				return nil, err
			}
			d.Opcode = uint16(op)
			d.S1, d.D, d.Imm = isa.Reg(s1), isa.Reg(dd), signExtend(imm, 18)
			return d, nil
		case mkStoreU:
			op, err := r.read(7)
			if err != nil {
				return nil, err
			}
			s1, _ := r.read(7)
			s2, _ := r.read(7)
			imm, err := r.read(18)
			if err != nil {
				return nil, err
			}
			if _, _, err := slotInfo(uint16(op)); err != nil {
				return nil, err
			}
			d.Opcode = uint16(op)
			d.S1, d.S2, d.Imm = isa.Reg(s1), isa.Reg(s2), signExtend(imm, 18)
			return d, nil
		case mkRegular:
			op, err := r.read(7)
			if err != nil {
				return nil, err
			}
			d.Opcode = uint16(op)
			info, isExt, err := slotInfo(uint16(op))
			if err != nil {
				return nil, err
			}
			g, _ := r.read(7)
			d.Guard = isa.Reg(g)
			switch {
			case !isExt && info.IsStore:
				s1, _ := r.read(7)
				s2, _ := r.read(7)
				imm, err := r.read(11)
				if err != nil {
					return nil, err
				}
				d.S1, d.S2, d.Imm = isa.Reg(s1), isa.Reg(s2), signExtend(imm, 11)
			case !isExt && info.HasImm && info.NSrc <= 1:
				s1, _ := r.read(7)
				dd, _ := r.read(7)
				imm, err := r.read(11)
				if err != nil {
					return nil, err
				}
				d.S1, d.D, d.Imm = isa.Reg(s1), isa.Reg(dd), signExtend(imm, 11)
			default:
				s1, _ := r.read(7)
				s2, _ := r.read(7)
				dd, _ := r.read(7)
				imm, err := r.read(4)
				if err != nil {
					return nil, err
				}
				d.S1, d.S2, d.D, d.Imm = isa.Reg(s1), isa.Reg(s2), isa.Reg(dd), uint32(imm)
			}
			return d, nil
		default:
			return nil, fmt.Errorf("bad 42-bit marker %d", mk)
		}
	}
	return nil, fmt.Errorf("bad size code %d", code)
}

// slotInfo returns the shape information for a decoded opcode, handling
// the reserved extension opcode. Decoded binaries are untrusted input:
// an undefined opcode is a decode error, never a panic.
func slotInfo(op uint16) (*isa.OpInfo, bool, error) {
	if op == SuperExtOpcode {
		return nil, true, nil
	}
	info, ok := isa.InfoOK(isa.Opcode(op))
	if !ok {
		return nil, false, fmt.Errorf("undefined opcode %d", op)
	}
	return info, false, nil
}
