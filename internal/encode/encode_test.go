package encode_test

import (
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
)

func compile(t *testing.T, p *prog.Program) (*sched.Code, *regalloc.Map, *encode.Encoded) {
	t.Helper()
	code, err := sched.Schedule(p, config.TM3270())
	if err != nil {
		t.Fatal(err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encode.Encode(code, rm, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	return code, rm, enc
}

// TestEncodeEmptyInstr pins the Figure 1 fact: an instruction without
// operations encodes in 2 bytes (10-bit template, all slots "11").
func TestEncodeEmptyInstr(t *testing.T) {
	// A tiny loop forces NOP padding instructions for delay slots.
	b := prog.NewBuilder("pads")
	i, c := b.Reg(), b.Reg()
	b.Imm(i, 0)
	b.Label("loop")
	b.AddI(i, i, 1)
	b.LesI(c, i, 3)
	b.JmpT(c, "loop")
	code, _, enc := compile(t, b.MustProgram())

	foundEmpty := false
	for idx := range code.Instrs {
		if code.Instrs[idx].Empty() {
			foundEmpty = true
			if enc.Size[idx] != 2 {
				t.Errorf("empty instruction %d encodes in %d bytes, want 2", idx, enc.Size[idx])
			}
		}
	}
	if !foundEmpty {
		t.Fatal("expected NOP padding instructions in the delay slots")
	}
}

// TestEncodeFullInstr pins the other Figure 1 fact: a maximal
// instruction (five 42-bit operations) encodes in 28 bytes. Jump-target
// instructions are always encoded that way.
func TestEncodeFullInstr(t *testing.T) {
	b := prog.NewBuilder("full")
	i, c := b.Reg(), b.Reg()
	b.Imm(i, 0)
	b.Label("loop") // jump target: must be uncompressed
	b.AddI(i, i, 1)
	b.LesI(c, i, 3)
	b.JmpT(c, "loop")
	code, _, enc := compile(t, b.MustProgram())

	li := code.Labels["loop"]
	if enc.Size[li] != 28 {
		t.Errorf("jump-target instruction encodes in %d bytes, want 28 (uncompressed)", enc.Size[li])
	}
	if enc.Size[0] != 28 {
		t.Errorf("entry instruction encodes in %d bytes, want 28", enc.Size[0])
	}
}

func TestCompressionShrinksCode(t *testing.T) {
	// Straight-line compact ops: apart from the (uncompressed) entry
	// instruction, a full instruction of five 26-bit operations encodes
	// in ceil((10+5*26)/8) = 18 bytes instead of 28.
	b := prog.NewBuilder("compact")
	r := b.Regs(10)
	for k := 0; k < 40; k++ {
		b.Add(r[k%5], r[5+k%5], r[5+(k+1)%5])
	}
	code, _, enc := compile(t, b.MustProgram())
	if len(code.Instrs) < 5 {
		t.Fatalf("expected several packed instructions, got %d", len(code.Instrs))
	}
	for i := 1; i < len(code.Instrs); i++ {
		if code.Instrs[i].OpCount() == 5 && enc.Size[i] != 18 {
			t.Errorf("instr %d with five compact ops encodes in %dB, want 18", i, enc.Size[i])
		}
	}
	if enc.Size[0] != 28 {
		t.Errorf("entry instr is %dB, want 28 (uncompressed)", enc.Size[0])
	}
	upper := 28 * len(code.Instrs)
	if enc.TotalBytes() >= upper*3/4 {
		t.Errorf("compressed code %dB vs uncompressed %dB: compression too weak",
			enc.TotalBytes(), upper)
	}
}

// TestRoundTrip encodes a representative kernel and decodes it back,
// comparing every slot field.
func TestRoundTrip(t *testing.T) {
	b := prog.NewBuilder("roundtrip")
	r := b.Regs(12)
	g := b.Reg()
	b.Imm(r[0], 0xdeadbeef) // 32-bit immediate (long form)
	b.Imm(r[1], 42)         // small immediate
	b.Label("loop")
	b.Add(r[2], r[0], r[1])
	b.Sub(r[3], r[2], r[0]).WithGuard(g)
	b.Ld32D(r[4], r[0], 128)
	b.St32D(r[0], -64, r[4])
	b.AslI(r[5], r[4], 7)
	b.SuperDualIMix(r[6], r[7], r[8], r[9], r[10], r[11])
	b.NonZero(g, r[2])
	b.JmpT(g, "loop")
	p := b.MustProgram()
	code, rm, enc := compile(t, p)

	dec, err := encode.Decode(enc.Bytes, enc.Base, len(code.Instrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(code.Instrs) {
		t.Fatalf("decoded %d instrs, want %d", len(dec), len(code.Instrs))
	}
	for i := range dec {
		if dec[i].Addr != enc.Addr[i] || dec[i].Size != enc.Size[i] {
			t.Errorf("instr %d: addr/size %#x/%d, want %#x/%d",
				i, dec[i].Addr, dec[i].Size, enc.Addr[i], enc.Size[i])
		}
		for s := 0; s < 5; s++ {
			so := code.Instrs[i].Slots[s]
			d := dec[i].Slots[s]
			if so.Op == nil {
				// Empty slots only materialize (as NOPs) in
				// uncompressed instructions.
				if d != nil && d.Opcode != uint16(isa.OpNOP) {
					t.Errorf("instr %d slot %d: phantom op %d", i, s+1, d.Opcode)
				}
				continue
			}
			if d == nil {
				t.Errorf("instr %d slot %d: op lost in encoding", i, s+1)
				continue
			}
			checkSlot(t, i, s, so, d, rm, code, enc)
		}
	}
}

func checkSlot(t *testing.T, i, s int, so sched.SlotOp, d *encode.DecOp,
	rm *regalloc.Map, code *sched.Code, enc *encode.Encoded) {
	t.Helper()
	op := so.Op
	info := op.Info()
	if so.Second {
		if !d.IsExt() {
			t.Errorf("instr %d slot %d: second half not marked ext", i, s+1)
			return
		}
		if info.NSrc > 2 && d.S1 != rm.Reg(op.Src[2]) {
			t.Errorf("instr %d slot %d: ext s3 = %v, want %v", i, s+1, d.S1, rm.Reg(op.Src[2]))
		}
		if info.NSrc > 3 && d.S2 != rm.Reg(op.Src[3]) {
			t.Errorf("instr %d slot %d: ext s4 mismatch", i, s+1)
		}
		if info.NDest > 1 && d.D != rm.Reg(op.Dest[1]) {
			t.Errorf("instr %d slot %d: ext d2 mismatch", i, s+1)
		}
		return
	}
	if d.Opcode != uint16(op.Opcode) {
		t.Errorf("instr %d slot %d: opcode %d, want %d (%s)", i, s+1, d.Opcode, op.Opcode, info.Name)
		return
	}
	if d.Guard != rm.Reg(op.Guard) {
		t.Errorf("instr %d slot %d (%s): guard %v, want %v", i, s+1, info.Name, d.Guard, rm.Reg(op.Guard))
	}
	if info.IsJump {
		want := enc.Addr[code.Labels[op.Target]]
		if d.Target != want {
			t.Errorf("instr %d slot %d: jump target %#x, want %#x", i, s+1, d.Target, want)
		}
		return
	}
	if info.NSrc > 0 && d.S1 != rm.Reg(op.Src[0]) {
		t.Errorf("instr %d slot %d (%s): s1 %v, want %v", i, s+1, info.Name, d.S1, rm.Reg(op.Src[0]))
	}
	if info.NSrc > 1 && d.S2 != rm.Reg(op.Src[1]) {
		t.Errorf("instr %d slot %d (%s): s2 %v, want %v", i, s+1, info.Name, d.S2, rm.Reg(op.Src[1]))
	}
	if info.NDest > 0 && d.D != rm.Reg(op.Dest[0]) {
		t.Errorf("instr %d slot %d (%s): dest %v, want %v", i, s+1, info.Name, d.D, rm.Reg(op.Dest[0]))
	}
	if info.HasImm && d.Imm != op.Imm {
		t.Errorf("instr %d slot %d (%s): imm %#x, want %#x", i, s+1, info.Name, d.Imm, op.Imm)
	}
}

func TestAddrMonotonicAndSentinel(t *testing.T) {
	b := prog.NewBuilder("addrs")
	r := b.Regs(4)
	b.Add(r[0], r[1], r[2])
	b.Mul(r[3], r[0], r[0])
	code, _, enc := compile(t, b.MustProgram())
	if len(enc.Addr) != len(code.Instrs)+1 {
		t.Fatalf("Addr has %d entries, want %d", len(enc.Addr), len(code.Instrs)+1)
	}
	for i := 0; i < len(code.Instrs); i++ {
		if enc.Addr[i+1] != enc.Addr[i]+uint32(enc.Size[i]) {
			t.Errorf("addr %d not contiguous", i)
		}
	}
	if enc.Addr[len(code.Instrs)] != enc.Base+uint32(len(enc.Bytes)) {
		t.Error("end sentinel does not match code size")
	}
}

func TestNegativeDisplacementRoundTrip(t *testing.T) {
	b := prog.NewBuilder("negdisp")
	base, v := b.Reg(), b.Reg()
	g := b.Reg()
	b.Ld32D(v, base, -4)
	b.St32D(base, -512, v).WithGuard(g)
	code, _, enc := compile(t, b.MustProgram())
	dec, err := encode.Decode(enc.Bytes, enc.Base, len(code.Instrs))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := range dec {
		for s := 0; s < 5; s++ {
			d := dec[i].Slots[s]
			if d == nil {
				continue
			}
			switch isa.Opcode(d.Opcode) {
			case isa.OpLD32D:
				if int32(d.Imm) != -4 {
					t.Errorf("ld32d imm = %d, want -4", int32(d.Imm))
				}
				found++
			case isa.OpST32D:
				if int32(d.Imm) != -512 {
					t.Errorf("st32d imm = %d, want -512", int32(d.Imm))
				}
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d memory ops after decode, want 2", found)
	}
}
