package encode

import (
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
)

// Reassemble decodes a binary image back into executable scheduled code:
// the inverse of Encode. Register operands become the identity virtual
// registers (v_i = r_i), two-slot operations are re-joined from their
// main and extension halves, and jump-target byte addresses become
// synthetic labels. The result runs on the machine model exactly like
// compiler-produced code, which the round-trip tests exploit: a kernel
// executed from its decoded binary must produce identical results.
//
// The target is required because the binary does not carry latencies or
// delay-slot counts — as on real TriMedia parts, the code only runs
// correctly on the family member it was compiled for.
func Reassemble(img []byte, base uint32, n int, t config.Target) (*sched.Code, *regalloc.Map, error) {
	dec, err := Decode(img, base, n)
	if err != nil {
		return nil, nil, err
	}

	addrToIdx := make(map[uint32]int, n+1)
	for i := range dec {
		addrToIdx[dec[i].Addr] = i
	}
	end := base + uint32(len(img))
	if n > 0 {
		end = dec[n-1].Addr + uint32(dec[n-1].Size)
	}
	addrToIdx[end] = n

	code := &sched.Code{
		Name:       "reassembled",
		Target:     t,
		Instrs:     make([]sched.Instr, n),
		Labels:     map[string]int{},
		BlockStart: []int{0},
	}
	rm := identityMap()

	label := func(addr uint32) (string, error) {
		idx, ok := addrToIdx[addr]
		if !ok {
			return "", fmt.Errorf("encode: jump to %#x, not an instruction boundary", addr)
		}
		name := fmt.Sprintf("L%d", idx)
		code.Labels[name] = idx
		return name, nil
	}

	for i := range dec {
		for s := 0; s < 5; s++ {
			d := dec[i].Slots[s]
			if d == nil || d.IsExt() || isa.Opcode(d.Opcode) == isa.OpNOP {
				continue
			}
			oc := isa.Opcode(d.Opcode)
			info, ok := isa.InfoOK(oc)
			if !ok {
				return nil, nil, fmt.Errorf("encode: instr %d: undefined opcode %d", i, d.Opcode)
			}
			op := &prog.Op{
				Opcode: oc,
				Guard:  prog.VReg(d.Guard),
				Imm:    d.Imm,
			}
			op.Src[0], op.Src[1] = prog.VReg(d.S1), prog.VReg(d.S2)
			op.Dest[0] = prog.VReg(d.D)
			if info.IsJump {
				name, err := label(d.Target)
				if err != nil {
					return nil, nil, err
				}
				op.Target = name
			}
			if info.TwoSlot {
				if s+1 >= 5 || dec[i].Slots[s+1] == nil || !dec[i].Slots[s+1].IsExt() {
					return nil, nil, fmt.Errorf("encode: instr %d: two-slot %s lacks its extension half", i, info.Name)
				}
				ext := dec[i].Slots[s+1]
				op.Src[2], op.Src[3] = prog.VReg(ext.S1), prog.VReg(ext.S2)
				op.Dest[1] = prog.VReg(ext.D)
				code.Instrs[i].Slots[s] = sched.SlotOp{Op: op}
				code.Instrs[i].Slots[s+1] = sched.SlotOp{Op: op, Second: true}
				code.SrcOps++
				s++ // the extension half is consumed
				continue
			}
			code.Instrs[i].Slots[s] = sched.SlotOp{Op: op}
			code.SrcOps++
		}
	}
	return code, rm, nil
}

// identityMap maps virtual register i to physical register i: the
// register numbering of reassembled code is already physical.
func identityMap() *regalloc.Map {
	m := &regalloc.Map{Phys: make([]isa.Reg, isa.NumRegs), Used: isa.NumRegs}
	for i := range m.Phys {
		m.Phys[i] = isa.Reg(i)
	}
	return m
}
