// Package encode implements the TM3270 binary instruction format: the
// template-based compressed VLIW encoding of Figure 1. Every VLIW
// instruction starts with a 10-bit template field holding five 2-bit
// compression codes that describe the operation sizes of the *next*
// instruction (so the decoder knows a compression template one cycle
// before the instruction itself arrives). Operations come in 26-, 34-
// and 42-bit encodings; "11" marks an unused slot. An empty instruction
// is 2 bytes, a maximal one 28 bytes. Jump-target instructions are not
// compressed: all five slots are present at 42 bits, so instruction
// decoding can start at any branch target without a preceding template.
package encode

import "fmt"

// bitWriter packs MSB-first bit fields into bytes.
type bitWriter struct {
	buf  []byte
	nbit int // bits written
}

func (w *bitWriter) write(v uint64, bits int) {
	for i := bits - 1; i >= 0; i-- {
		if w.nbit&7 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v>>uint(i)&1 != 0 {
			w.buf[len(w.buf)-1] |= 0x80 >> uint(w.nbit&7)
		}
		w.nbit++
	}
}

// padToByte fills the current byte with zero bits.
func (w *bitWriter) padToByte() {
	for w.nbit&7 != 0 {
		w.nbit++
	}
}

// bitReader reads MSB-first bit fields.
type bitReader struct {
	buf []byte
	pos int // bit position
}

func (r *bitReader) read(bits int) (uint64, error) {
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := r.pos >> 3
		if byteIdx >= len(r.buf) {
			return 0, fmt.Errorf("encode: bitstream exhausted at bit %d", r.pos)
		}
		v = v<<1 | uint64(r.buf[byteIdx]>>(7-uint(r.pos&7))&1)
		r.pos++
	}
	return v, nil
}

func (r *bitReader) alignByte() { r.pos = (r.pos + 7) &^ 7 }

func (r *bitReader) seekByte(byteOff int) { r.pos = byteOff * 8 }
