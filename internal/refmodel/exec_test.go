package refmodel

import (
	"testing"

	"tm3270/internal/cabac"
	"tm3270/internal/isa"
)

// goldenCase is one hand-computed semantics vector: sources, immediate
// and (for loads) the raw big-endian bytes the machine fetched.
type goldenCase struct {
	src    [4]uint32
	imm    uint32
	loaded uint64
	d0, d1 uint32
}

// machineLevel lists the operations whose semantics live in the machine
// rather than in execute(): they are covered by the dedicated machine
// tests in machine_test.go (stores, jumps, delay slots, allocd, nop).
var machineLevel = map[isa.Opcode]bool{
	isa.OpNOP:    true,
	isa.OpJMPI:   true,
	isa.OpJMPT:   true,
	isa.OpJMPF:   true,
	isa.OpST32D:  true,
	isa.OpST16D:  true,
	isa.OpST8D:   true,
	isa.OpALLOCD: true,
}

var goldens = map[isa.Opcode]goldenCase{
	isa.OpIIMM: {imm: 0xdeadbeef, d0: 0xdeadbeef},

	isa.OpIADD:     {src: [4]uint32{3, 4}, d0: 7},
	isa.OpISUB:     {src: [4]uint32{3, 4}, d0: 0xffffffff},
	isa.OpIADDI:    {src: [4]uint32{5}, imm: 7, d0: 12},
	isa.OpIMIN:     {src: [4]uint32{5, 0xfffffffd}, d0: 0xfffffffd},
	isa.OpIMAX:     {src: [4]uint32{5, 0xfffffffd}, d0: 5},
	isa.OpIAVGONEP: {src: [4]uint32{7, 4}, d0: 6},

	isa.OpBITAND:    {src: [4]uint32{0xf0f0, 0xff00}, d0: 0xf000},
	isa.OpBITOR:     {src: [4]uint32{0xf0f0, 0xff00}, d0: 0xfff0},
	isa.OpBITXOR:    {src: [4]uint32{0xf0f0, 0xff00}, d0: 0x0ff0},
	isa.OpBITANDINV: {src: [4]uint32{0xf0f0, 0xff00}, d0: 0x00f0},
	isa.OpBITINV:    {src: [4]uint32{0xf0f0}, d0: 0xffff0f0f},

	isa.OpSEX8:  {src: [4]uint32{0x80}, d0: 0xffffff80},
	isa.OpSEX16: {src: [4]uint32{0x8000}, d0: 0xffff8000},
	isa.OpZEX8:  {src: [4]uint32{0x1ff}, d0: 0xff},
	isa.OpZEX16: {src: [4]uint32{0x12345}, d0: 0x2345},

	isa.OpIEQL:     {src: [4]uint32{5, 5}, d0: 1},
	isa.OpINEQ:     {src: [4]uint32{5, 5}, d1: 0},
	isa.OpIGTR:     {src: [4]uint32{1, 0xffffffff}, d0: 1}, // 1 > -1 signed
	isa.OpIGEQ:     {src: [4]uint32{5, 5}, d0: 1},
	isa.OpILES:     {src: [4]uint32{0xffffffff, 0}, d0: 1}, // -1 < 0 signed
	isa.OpILEQ:     {src: [4]uint32{5, 6}, d0: 1},
	isa.OpUGTR:     {src: [4]uint32{0xffffffff, 0}, d0: 1},
	isa.OpUGEQ:     {src: [4]uint32{0, 0}, d0: 1},
	isa.OpULES:     {src: [4]uint32{1, 2}, d0: 1},
	isa.OpULEQ:     {src: [4]uint32{2, 2}, d0: 1},
	isa.OpIEQLI:    {src: [4]uint32{5}, imm: 5, d0: 1},
	isa.OpINEQI:    {src: [4]uint32{5}, imm: 4, d0: 1},
	isa.OpIGTRI:    {src: [4]uint32{0}, imm: 0xffffffff, d0: 1}, // 0 > -1
	isa.OpILESI:    {src: [4]uint32{0xfffffffe}, imm: 0xffffffff, d0: 1},
	isa.OpIZERO:    {src: [4]uint32{0}, d0: 1},
	isa.OpINONZERO: {src: [4]uint32{7}, d0: 1},

	isa.OpASL:  {src: [4]uint32{1, 33}, d0: 2}, // shift count is mod 32
	isa.OpASR:  {src: [4]uint32{0x80000000, 1}, d0: 0xc0000000},
	isa.OpLSR:  {src: [4]uint32{0x80000000, 1}, d0: 0x40000000},
	isa.OpROL:  {src: [4]uint32{0x80000001, 1}, d0: 3},
	isa.OpASLI: {src: [4]uint32{1}, imm: 4, d0: 16},
	isa.OpASRI: {src: [4]uint32{0x80000000}, imm: 4, d0: 0xf8000000},
	isa.OpLSRI: {src: [4]uint32{0x80000000}, imm: 4, d0: 0x08000000},
	isa.OpROLI: {src: [4]uint32{0x80000001}, imm: 1, d0: 3},
	isa.OpICLZ: {src: [4]uint32{0}, d0: 32},

	isa.OpFUNSHIFT1: {src: [4]uint32{0x11223344, 0xaabbccdd}, d0: 0x223344aa},
	isa.OpFUNSHIFT2: {src: [4]uint32{0x11223344, 0xaabbccdd}, d0: 0x3344aabb},
	isa.OpFUNSHIFT3: {src: [4]uint32{0x11223344, 0xaabbccdd}, d0: 0x44aabbcc},

	isa.OpIMUL:    {src: [4]uint32{3, 0xffffffff}, d0: 0xfffffffd},
	isa.OpIMULM:   {src: [4]uint32{0x10000, 0x10000}, d0: 1},
	isa.OpUMULM:   {src: [4]uint32{0x80000000, 4}, d0: 2},
	isa.OpDSPIMUL: {src: [4]uint32{0x7fffffff, 2}, d0: 0x7fffffff},
	isa.OpIFIR16:  {src: [4]uint32{0x00020003, 0x00040005}, d0: 23},
	isa.OpUFIR16:  {src: [4]uint32{0xffff0001, 0x00020003}, d0: 0x20001},
	isa.OpIFIR8UI: {src: [4]uint32{0x01020304, 0xff000002}, d0: 7},
	isa.OpUME8UU:  {src: [4]uint32{0x01020304, 0x04030201}, d0: 8},
	isa.OpUME8II:  {src: [4]uint32{0x80000000, 0x7f000000}, d0: 255},

	isa.OpDSPIADD:       {src: [4]uint32{0x7fffffff, 1}, d0: 0x7fffffff},
	isa.OpDSPISUB:       {src: [4]uint32{0x80000000, 1}, d0: 0x80000000},
	isa.OpDSPIABS:       {src: [4]uint32{0x80000000}, d0: 0x7fffffff},
	isa.OpDSPIDUALADD:   {src: [4]uint32{0x7fff0001, 0x00010001}, d0: 0x7fff0002},
	isa.OpDSPIDUALSUB:   {src: [4]uint32{0x80000003, 0x00010001}, d0: 0x80000002},
	isa.OpDSPIDUALMUL:   {src: [4]uint32{0x00020003, 0x40000004}, d0: 0x7fff000c},
	isa.OpDSPUQUADADDUI: {src: [4]uint32{0xff00ff00, 0x01ff0180}, d0: 0xff00ff00},
	isa.OpQUADAVG:       {src: [4]uint32{0x01030507, 0x03050709}, d0: 0x02040608},
	isa.OpQUADUMIN:      {src: [4]uint32{0x01ff02fe, 0x02fe03fd}, d0: 0x01fe02fd},
	isa.OpQUADUMAX:      {src: [4]uint32{0x01ff02fe, 0x02fe03fd}, d0: 0x02ff03fe},
	isa.OpQUADUMULMSB:   {src: [4]uint32{0x02000010, 0x80000010}, d0: 0x01000001},

	isa.OpICLIPI:     {src: [4]uint32{300}, imm: 4, d0: 15},
	isa.OpUCLIPI:     {src: [4]uint32{0xfffffffb}, imm: 4, d0: 0},
	isa.OpDUALICLIPI: {src: [4]uint32{0x7fff0005}, imm: 3, d0: 0x00070005},
	isa.OpDUALUCLIPI: {src: [4]uint32{0x8000000a}, imm: 3, d0: 0x00000007},

	isa.OpPACK16LSB:      {src: [4]uint32{0x11112222, 0x33334444}, d0: 0x22224444},
	isa.OpPACK16MSB:      {src: [4]uint32{0x11112222, 0x33334444}, d0: 0x11113333},
	isa.OpPACKBYTES:      {src: [4]uint32{0xaa, 0xbb}, d0: 0xaabb},
	isa.OpMERGELSB:       {src: [4]uint32{0x11223344, 0xaabbccdd}, d0: 0x33cc44dd},
	isa.OpMERGEMSB:       {src: [4]uint32{0x11223344, 0xaabbccdd}, d0: 0x11aa22bb},
	isa.OpMERGEDUAL16LSB: {src: [4]uint32{0x11112222, 0x33334444}, d0: 0x44442222},
	isa.OpUBYTESEL:       {src: [4]uint32{0x11223344, 2}, d0: 0x22},
	isa.OpIBYTESEL:       {src: [4]uint32{0x11ff3344, 2}, d0: 0xffffffff},

	isa.OpFADD:     {src: [4]uint32{0x3f800000, 0x40000000}, d0: 0x40400000}, // 1+2=3
	isa.OpFSUB:     {src: [4]uint32{0x40000000, 0x3f800000}, d0: 0x3f800000}, // 2-1=1
	isa.OpFABSVAL:  {src: [4]uint32{0xbf800000}, d0: 0x3f800000},
	isa.OpIFLOAT:   {src: [4]uint32{0xffffffff}, d0: 0xbf800000}, // -1 -> -1.0
	isa.OpUFLOAT:   {src: [4]uint32{0xffffffff}, d0: 0x4f800000},
	isa.OpIFIXIEEE: {src: [4]uint32{0x40200000}, d0: 2}, // 2.5 rounds to even
	isa.OpUFIXIEEE: {src: [4]uint32{0x40200000}, d0: 2},
	isa.OpFEQL:     {src: [4]uint32{0x3f800000, 0x3f800000}, d0: 1},
	isa.OpFGTR:     {src: [4]uint32{0x40000000, 0x3f800000}, d0: 1},
	isa.OpFGEQ:     {src: [4]uint32{0x3f800000, 0x3f800000}, d0: 1},
	isa.OpFMUL:     {src: [4]uint32{0x40000000, 0x40400000}, d0: 0x40c00000}, // 2*3=6
	isa.OpFDIV:     {src: [4]uint32{0x40c00000, 0x40000000}, d0: 0x40400000}, // 6/2=3
	isa.OpFSQRT:    {src: [4]uint32{0x40800000}, d0: 0x40000000},             // sqrt(4)=2

	isa.OpLD32D:  {loaded: 0x11223344, d0: 0x11223344},
	isa.OpLD32R:  {loaded: 0x11223344, d0: 0x11223344},
	isa.OpLD16D:  {loaded: 0x8000, d0: 0xffff8000},
	isa.OpLD16R:  {loaded: 0x8000, d0: 0xffff8000},
	isa.OpULD16D: {loaded: 0x8000, d0: 0x8000},
	isa.OpULD16R: {loaded: 0x8000, d0: 0x8000},
	isa.OpLD8D:   {loaded: 0x80, d0: 0xffffff80},
	isa.OpLD8R:   {loaded: 0x80, d0: 0xffffff80},
	isa.OpULD8D:  {loaded: 0x80, d0: 0x80},
	isa.OpULD8R:  {loaded: 0x80, d0: 0x80},

	// Half-pixel interpolation: out[i] = (b[i]*(16-f) + b[i+1]*f + 8)/16
	// over the five fetched bytes with f = 8.
	isa.OpLDFRAC8: {src: [4]uint32{0, 8}, loaded: 0x1122334455, d0: 0x1a2b3c4d},

	isa.OpSUPERDUALIMIX: {src: [4]uint32{0x00020003, 0x00040005, 0x00010001, 0x00010001},
		d0: 9, d1: 16},
	isa.OpSUPERLD32R: {loaded: 0x1122334455667788, d0: 0x11223344, d1: 0x55667788},
	isa.OpSUPERUME8UU: {src: [4]uint32{0x01020304, 0x01010101, 0x04030201, 0x02020202},
		d0: 12},
	// CABAC goldens are derived from the cabac codec package (the
	// repo's bit-exact H.264 reference) in TestExecGoldens.
	isa.OpSUPERCABACSTR: {src: [4]uint32{0x12340100, 5, 0, 0x003f0001}},
	isa.OpSUPERCABACCTX: {src: [4]uint32{0x12340100, 3, 0xdeadbeef, 0x00150000}},
}

// cabacWant computes the expected destinations of the two CABAC super
// operations from the codec package's Step — the independent bit-exact
// H.264 arithmetic decoder the ops were lifted from.
func cabacWant(op isa.Opcode, src [4]uint32) (uint32, uint32) {
	value, rng := src[0]>>16, src[0]&0xffff
	state, mps := src[3]>>16&63, src[3]&1
	switch op {
	case isa.OpSUPERCABACSTR:
		res := cabac.Step(value, rng, 0, state, mps)
		return src[1] + uint32(res.Consumed), res.Bit
	default: // SUPERCABACCTX
		res := cabac.Step(value, rng, src[2]<<(src[1]&31), state, mps)
		return res.Value<<16 | res.Range&0xffff, res.State<<16 | res.MPS&0xffff
	}
}

// TestExecGoldens checks one golden vector per ISA operation and fails
// if any operation lacks either a vector or a machine-level test,
// guaranteeing the table tracks the opcode catalogue.
func TestExecGoldens(t *testing.T) {
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		info, ok := isa.InfoOK(op)
		if !ok {
			t.Fatalf("opcode %d undefined", op)
		}
		if machineLevel[op] {
			continue
		}
		g, ok := goldens[op]
		if !ok {
			t.Errorf("%s: no golden semantics case", info.Name)
			continue
		}
		want0, want1 := g.d0, g.d1
		if op == isa.OpSUPERCABACSTR || op == isa.OpSUPERCABACCTX {
			want0, want1 = cabacWant(op, g.src)
		}
		src := g.src
		d0, d1 := execute(op, &src, g.imm, g.loaded)
		if d0 != want0 || d1 != want1 {
			t.Errorf("%s(%#x, imm %#x, loaded %#x) = (%#x, %#x), want (%#x, %#x)",
				info.Name, g.src, g.imm, g.loaded, d0, d1, want0, want1)
		}
	}
}

// TestStoreBytes pins the width and value image of each store form.
func TestStoreBytes(t *testing.T) {
	src := [4]uint32{0, 0x11223344}
	cases := []struct {
		op isa.Opcode
		n  int
		v  uint64
	}{
		{isa.OpST32D, 4, 0x11223344},
		{isa.OpST16D, 2, 0x3344},
		{isa.OpST8D, 1, 0x44},
	}
	for _, c := range cases {
		n, v := storeBytes(c.op, &src)
		if n != c.n || v != c.v {
			t.Errorf("%s: (%d, %#x), want (%d, %#x)", c.op, n, v, c.n, c.v)
		}
	}
}
