package refmodel

import "sort"

// pageShift selects 4 KB pages for the sparse image, matching the
// functional memory the pipeline model executes against so that final
// images can be diffed page by page.
const pageShift = 12

// pageSize is the page granularity of the sparse image.
const pageSize = 1 << pageShift

// page is one 4 KB page with a per-byte write-validity bitmap. The
// TM3270's allocate-on-write-miss data cache tracks validity per byte
// (Section 2.3); the reference model keeps the same granularity so that
// strict mode can flag reads of individual never-written bytes — the
// same per-byte semantics the pipeline model's strict mode now tracks
// in mem.Func, which the strict co-simulation test asserts.
type page struct {
	data  [pageSize]byte
	valid [pageSize / 8]byte
}

// Mem is the reference model's memory image: a sparse big-endian image
// over the full 32-bit address space supporting non-aligned accesses,
// with per-byte write validity. The zero address space reads as zero.
type Mem struct {
	pages map[uint32]*page
}

// NewMem returns an empty image.
func NewMem() *Mem { return &Mem{pages: make(map[uint32]*page)} }

func (m *Mem) page(addr uint32, create bool) *page {
	idx := addr >> pageShift
	p := m.pages[idx]
	if p == nil && create {
		p = new(page)
		m.pages[idx] = p
	}
	return p
}

// ByteAt returns the byte at addr (zero when never written).
func (m *Mem) ByteAt(addr uint32) byte {
	if p := m.page(addr, false); p != nil {
		return p.data[addr&(pageSize-1)]
	}
	return 0
}

// SetByte writes the byte at addr and marks it valid.
func (m *Mem) SetByte(addr uint32, v byte) {
	p := m.page(addr, true)
	off := addr & (pageSize - 1)
	p.data[off] = v
	p.valid[off/8] |= 1 << (off % 8)
}

// Defined reports whether every byte of [addr, addr+n) has been
// written at least once.
func (m *Mem) Defined(addr uint32, n int) bool {
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		a := addr + uint32(i)
		p := m.page(a, false)
		if p == nil {
			return false
		}
		off := a & (pageSize - 1)
		if p.valid[off/8]&(1<<(off%8)) == 0 {
			return false
		}
	}
	return true
}

// Load returns n bytes (1..8) starting at addr, big-endian, in the
// low-order bits of the result.
func (m *Mem) Load(addr uint32, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(m.ByteAt(addr+uint32(i)))
	}
	return v
}

// Store writes the n (1..8) low-order bytes of v, big-endian,
// starting at addr.
func (m *Mem) Store(addr uint32, n int, v uint64) {
	for i := n - 1; i >= 0; i-- {
		m.SetByte(addr+uint32(i), byte(v))
		v >>= 8
	}
}

// WriteBytes copies b into the image starting at addr.
func (m *Mem) WriteBytes(addr uint32, b []byte) {
	for i, x := range b {
		m.SetByte(addr+uint32(i), x)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Mem) ReadBytes(addr uint32, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.ByteAt(addr + uint32(i))
	}
	return b
}

// PageAddrs returns the base addresses of all populated pages in
// ascending order (image diffing).
func (m *Mem) PageAddrs() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for idx := range m.pages {
		out = append(out, idx<<pageShift)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
