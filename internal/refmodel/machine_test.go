package refmodel

import (
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/prefetch"
)

// uop builds an unguarded decoded slot op (the decoder's default guard
// is the hardwired-one register).
func uop(o isa.Opcode, s1, s2, d isa.Reg, imm uint32) *encode.DecOp {
	return &encode.DecOp{Opcode: uint16(o), Guard: isa.R1, S1: s1, S2: s2, D: d, Imm: imm}
}

func gop(g isa.Reg, o isa.Opcode, s1, s2, d isa.Reg, imm uint32) *encode.DecOp {
	op := uop(o, s1, s2, d, imm)
	op.Guard = g
	return op
}

func jmp(o isa.Opcode, g isa.Reg, target uint32) *encode.DecOp {
	return &encode.DecOp{Opcode: uint16(o), Guard: g, Target: target}
}

const testBase = 0x4000

// seq lays a one-op-per-instruction program out at testBase with a
// fixed instruction size, so instruction i sits at pcOf(i).
func seq(ops ...*encode.DecOp) []encode.DecInstr {
	out := make([]encode.DecInstr, len(ops))
	for i, op := range ops {
		out[i] = encode.DecInstr{Addr: pcOf(i), Size: 28, Slots: [5]*encode.DecOp{op}}
	}
	return out
}

func pcOf(i int) uint32 { return testBase + uint32(28*i) }

func mustRun(t *testing.T, m *Machine) {
	t.Helper()
	if trap := m.Run(); trap != nil {
		t.Fatalf("unexpected trap: %v", trap)
	}
}

func wantTrap(t *testing.T, m *Machine, kind TrapKind) *Trap {
	t.Helper()
	trap := m.Run()
	if trap == nil {
		t.Fatalf("ran clean, want trap %v", kind)
	}
	if trap.Kind != kind {
		t.Fatalf("trap %v (%s), want %v", trap.Kind, trap.Reason, kind)
	}
	return trap
}

// TestGuardFalseNoOp: a guard-false operation must leave the machine
// untouched — same op guarded true writes its destination.
func TestGuardFalseNoOp(t *testing.T) {
	prog := func(g isa.Reg) []encode.DecInstr {
		return seq(gop(g, isa.OpIIMM, 0, 0, isa.Reg(10), 0xdeadbeef))
	}
	m := New(prog(isa.R0), config.ConfigD(), nil) // guard reads 0: no-op
	mustRun(t, m)
	if got := m.Reg(isa.Reg(10)); got != 0 {
		t.Errorf("guard-false iimm wrote r10 = %#x, want untouched 0", got)
	}
	m = New(prog(isa.R1), config.ConfigD(), nil) // guard reads 1: executes
	mustRun(t, m)
	if got := m.Reg(isa.Reg(10)); got != 0xdeadbeef {
		t.Errorf("guard-true iimm: r10 = %#x, want 0xdeadbeef", got)
	}
}

// TestSuperOpDualDest: a two-slot operation writes both destination
// registers — the main half's and the extension half's.
func TestSuperOpDualDest(t *testing.T) {
	main := uop(isa.OpSUPERDUALIMIX, isa.Reg(10), isa.Reg(11), isa.Reg(20), 0)
	ext := &encode.DecOp{Opcode: encode.SuperExtOpcode,
		S1: isa.Reg(12), S2: isa.Reg(13), D: isa.Reg(21)}
	in := encode.DecInstr{Addr: testBase, Size: 28,
		Slots: [5]*encode.DecOp{main, ext}}
	m := New([]encode.DecInstr{in}, config.ConfigD(), nil)
	m.SetReg(isa.Reg(10), 0x00020003)
	m.SetReg(isa.Reg(11), 0x00040005)
	m.SetReg(isa.Reg(12), 0x00010001)
	m.SetReg(isa.Reg(13), 0x00010001)
	mustRun(t, m)
	if d0 := m.Reg(isa.Reg(20)); d0 != 9 {
		t.Errorf("super dual mix d0 = %#x, want 9", d0)
	}
	if d1 := m.Reg(isa.Reg(21)); d1 != 16 {
		t.Errorf("super dual mix d1 = %#x, want 16", d1)
	}
}

// TestDelayedWriteback: a result commits `latency` instructions after
// issue — a reader inside the window sees the stale value, a reader at
// the boundary sees the new one. imul has latency 3 on every target.
func TestDelayedWriteback(t *testing.T) {
	m := New(seq(
		uop(isa.OpIMUL, isa.Reg(10), isa.Reg(11), isa.Reg(20), 0), // r20 <- 12 at issue 3
		uop(isa.OpIADD, isa.Reg(20), isa.R0, isa.Reg(21), 0),      // issue 1: stale
		uop(isa.OpNOP, 0, 0, 0, 0),
		uop(isa.OpIADD, isa.Reg(20), isa.R0, isa.Reg(22), 0), // issue 3: committed
	), config.ConfigD(), nil)
	m.SetReg(isa.Reg(10), 3)
	m.SetReg(isa.Reg(11), 4)
	m.SetReg(isa.Reg(20), 0x55)
	mustRun(t, m)
	if got := m.Reg(isa.Reg(21)); got != 0x55 {
		t.Errorf("reader inside the latency window: r21 = %#x, want stale 0x55", got)
	}
	if got := m.Reg(isa.Reg(22)); got != 12 {
		t.Errorf("reader at the latency boundary: r22 = %#x, want 12", got)
	}
}

// TestJumpDelaySlots: a taken jump redirects only after the target's
// delay slots, so the instructions in the window still execute — 3 on
// the TM3260 configuration, 5 on the TM3270.
func TestJumpDelaySlots(t *testing.T) {
	for _, tc := range []struct {
		target config.Target
		want   uint32
	}{
		{config.ConfigA(), 3},
		{config.ConfigD(), 5},
	} {
		end := pcOf(7) // one past the last instruction: halts
		ops := []*encode.DecOp{jmp(isa.OpJMPI, isa.R1, end)}
		for i := 0; i < 6; i++ {
			ops = append(ops, uop(isa.OpIADDI, isa.Reg(10), 0, isa.Reg(10), 1))
		}
		m := New(seq(ops...), tc.target, nil)
		mustRun(t, m)
		if got := m.Reg(isa.Reg(10)); got != tc.want {
			t.Errorf("%s: %d delay-slot increments, want %d", tc.target.Name, got, tc.want)
		}
	}
}

// TestTrapDelayViolation: a jump taken inside an earlier taken jump's
// delay window is an architectural fault.
func TestTrapDelayViolation(t *testing.T) {
	end := pcOf(7)
	m := New(seq(
		jmp(isa.OpJMPI, isa.R1, end),
		jmp(isa.OpJMPI, isa.R1, end),
		uop(isa.OpNOP, 0, 0, 0, 0), uop(isa.OpNOP, 0, 0, 0, 0),
		uop(isa.OpNOP, 0, 0, 0, 0), uop(isa.OpNOP, 0, 0, 0, 0),
		uop(isa.OpNOP, 0, 0, 0, 0),
	), config.ConfigD(), nil)
	trap := wantTrap(t, m, TrapDelayViolation)
	if trap.Issue != 1 || trap.PC != pcOf(1) {
		t.Errorf("trap at issue %d pc %#x, want issue 1 pc %#x", trap.Issue, trap.PC, pcOf(1))
	}
	// A guard-false jump in the window is fine: it does not take.
	m = New(seq(
		jmp(isa.OpJMPI, isa.R1, end),
		jmp(isa.OpJMPT, isa.R0, end),
		uop(isa.OpNOP, 0, 0, 0, 0), uop(isa.OpNOP, 0, 0, 0, 0),
		uop(isa.OpNOP, 0, 0, 0, 0), uop(isa.OpNOP, 0, 0, 0, 0),
		uop(isa.OpNOP, 0, 0, 0, 0),
	), config.ConfigD(), nil)
	mustRun(t, m)
}

// TestTrapBadTarget: a taken jump must land on an instruction boundary
// of the loaded binary.
func TestTrapBadTarget(t *testing.T) {
	m := New(seq(jmp(isa.OpJMPI, isa.R1, testBase+2)), config.ConfigD(), nil)
	trap := wantTrap(t, m, TrapBadTarget)
	if trap.Addr != testBase+2 {
		t.Errorf("trap addr %#x, want %#x", trap.Addr, testBase+2)
	}
	// jmpf takes on a zero guard: same check applies.
	m = New(seq(jmp(isa.OpJMPF, isa.R0, testBase+3)), config.ConfigD(), nil)
	wantTrap(t, m, TrapBadTarget)
}

// TestTrapBadPair: a stray extension half, or a two-slot main half
// without one, is a malformed bundle.
func TestTrapBadPair(t *testing.T) {
	stray := encode.DecInstr{Addr: testBase, Size: 28,
		Slots: [5]*encode.DecOp{{Opcode: encode.SuperExtOpcode}}}
	m := New([]encode.DecInstr{stray}, config.ConfigD(), nil)
	wantTrap(t, m, TrapBadPair)

	unpaired := encode.DecInstr{Addr: testBase, Size: 28,
		Slots: [5]*encode.DecOp{uop(isa.OpSUPERLD32R, isa.Reg(10), isa.R0, isa.Reg(20), 0)}}
	m = New([]encode.DecInstr{unpaired}, config.ConfigD(), nil)
	wantTrap(t, m, TrapBadPair)
}

// TestTrapBadOpcode: an undefined opcode in a slot stops the machine.
func TestTrapBadOpcode(t *testing.T) {
	bad := encode.DecInstr{Addr: testBase, Size: 28,
		Slots: [5]*encode.DecOp{{Opcode: 500, Guard: isa.R1}}}
	m := New([]encode.DecInstr{bad}, config.ConfigD(), nil)
	wantTrap(t, m, TrapBadOpcode)
}

// mmioMachine builds a one-op program touching the MMIO block, with the
// block base in r10 and a store value in r11.
func mmioMachine(t config.Target, op *encode.DecOp) *Machine {
	m := New(seq(op), t, nil)
	m.SetReg(isa.Reg(10), prefetch.MMIOBase)
	m.SetReg(isa.Reg(11), 0x1234)
	return m
}

// TestMMIO pins the prefetch MMIO bank semantics: 32-bit aligned
// accesses on a prefetch-capable target read and write the bank, the
// reserved fourth word reads zero and drops stores, and everything else
// traps the way the pipeline model's bus does.
func TestMMIO(t *testing.T) {
	d := config.ConfigD()
	if !d.HasRegionPrefetch {
		t.Fatal("ConfigD must have the region prefetcher")
	}

	// Store/load roundtrip through region 1's END register (offset 16+4).
	m := New(seq(
		uop(isa.OpST32D, isa.Reg(10), isa.Reg(11), 0, 20),
		uop(isa.OpLD32D, isa.Reg(10), 0, isa.Reg(20), 20),
	), d, nil)
	m.SetReg(isa.Reg(10), prefetch.MMIOBase)
	m.SetReg(isa.Reg(11), 0x1234)
	mustRun(t, m)
	if got := m.Reg(isa.Reg(20)); got != 0x1234 {
		t.Errorf("MMIO roundtrip read %#x, want 0x1234", got)
	}
	if bank := m.MMIORegs(); bank[1][1] != 0x1234 {
		t.Errorf("region 1 END = %#x, want 0x1234", bank[1][1])
	}

	// The fourth word of each region is reserved: stores drop, loads
	// read zero.
	m = New(seq(
		uop(isa.OpST32D, isa.Reg(10), isa.Reg(11), 0, 12),
		uop(isa.OpLD32D, isa.Reg(10), 0, isa.Reg(20), 12),
	), d, nil)
	m.SetReg(isa.Reg(10), prefetch.MMIOBase)
	m.SetReg(isa.Reg(11), 0xffff)
	m.SetReg(isa.Reg(20), 0x77)
	mustRun(t, m)
	if got := m.Reg(isa.Reg(20)); got != 0 {
		t.Errorf("reserved MMIO word read %#x, want 0", got)
	}
	if bank := m.MMIORegs(); bank[0] != [3]uint32{} {
		t.Errorf("reserved store leaked into region 0 bank: %v", bank[0])
	}

	for _, tc := range []struct {
		name   string
		target config.Target
		op     *encode.DecOp
	}{
		{"sub-word store", d, uop(isa.OpST16D, isa.Reg(10), isa.Reg(11), 0, 0)},
		{"sub-word load", d, uop(isa.OpLD8D, isa.Reg(10), 0, isa.Reg(20), 0)},
		{"misaligned", d, uop(isa.OpLD32D, isa.Reg(10), 0, isa.Reg(20), 2)},
		{"no prefetcher", config.ConfigA(), uop(isa.OpLD32D, isa.Reg(10), 0, isa.Reg(20), 0)},
	} {
		trap := wantTrap(t, mmioMachine(tc.target, tc.op), TrapMMIO)
		if trap.Slot != 1 {
			t.Errorf("%s: trap slot %d, want 1", tc.name, trap.Slot)
		}
	}

	// A word access straddling the block base from below traps too.
	m = mmioMachine(d, uop(isa.OpLD32D, isa.Reg(10), 0, isa.Reg(20), 0))
	m.SetReg(isa.Reg(10), prefetch.MMIOBase-2)
	m.Mem.WriteBytes(prefetch.MMIOBase-8, make([]byte, 8))
	wantTrap(t, m, TrapMMIO)
}

// TestWatchdog: an infinite loop hits the instruction budget.
func TestWatchdog(t *testing.T) {
	ops := []*encode.DecOp{jmp(isa.OpJMPI, isa.R1, testBase)}
	for i := 0; i < 6; i++ {
		ops = append(ops, uop(isa.OpNOP, 0, 0, 0, 0))
	}
	m := New(seq(ops...), config.ConfigD(), nil)
	m.MaxInstrs = 100
	trap := wantTrap(t, m, TrapWatchdog)
	if trap.Issue != 100 {
		t.Errorf("watchdog at issue %d, want 100", trap.Issue)
	}
}

// TestStrictMem: per-byte write-validity tracking — a load is clean
// only when every byte it touches has been written, finer than the
// pipeline model's page-granular check.
func TestStrictMem(t *testing.T) {
	load := seq(uop(isa.OpLD32D, isa.Reg(10), 0, isa.Reg(20), 0))

	m := New(load, config.ConfigD(), nil)
	m.StrictMem = true
	m.SetReg(isa.Reg(10), 0x2000)
	m.Mem.WriteBytes(0x2000, []byte{0xaa, 0xbb}) // only 2 of the 4 bytes
	trap := wantTrap(t, m, TrapUndefinedRead)
	if trap.Addr != 0x2000 {
		t.Errorf("trap addr %#x, want 0x2000", trap.Addr)
	}

	m = New(load, config.ConfigD(), nil)
	m.StrictMem = true
	m.SetReg(isa.Reg(10), 0x2000)
	m.Mem.WriteBytes(0x2000, []byte{0xaa, 0xbb, 0xcc, 0xdd})
	mustRun(t, m)
	if got := m.Reg(isa.Reg(20)); got != 0xaabbccdd {
		t.Errorf("defined load read %#x, want 0xaabbccdd", got)
	}

	// Stores into the reserved null page trap in strict mode only.
	st := seq(uop(isa.OpST32D, isa.Reg(10), isa.Reg(11), 0, 0))
	m = New(st, config.ConfigD(), nil)
	m.StrictMem = true
	m.SetReg(isa.Reg(10), 0x800)
	wantTrap(t, m, TrapNullStore)
	m = New(st, config.ConfigD(), nil)
	m.SetReg(isa.Reg(10), 0x800)
	mustRun(t, m)

	// allocd performs no functional memory access, so it is exempt from
	// both strict checks.
	m = New(seq(uop(isa.OpALLOCD, isa.Reg(10), 0, 0, 0)), config.ConfigD(), nil)
	m.StrictMem = true
	m.SetReg(isa.Reg(10), 0x800)
	mustRun(t, m)
	if pages := m.Mem.PageAddrs(); len(pages) != 0 {
		t.Errorf("allocd touched memory: pages %v", pages)
	}
}

// TestStoreWidthBytes: each store form writes exactly its width,
// big-endian, leaving neighbours intact.
func TestStoreWidthBytes(t *testing.T) {
	m := New(seq(uop(isa.OpST16D, isa.Reg(10), isa.Reg(11), 0, 1)), config.ConfigD(), nil)
	m.SetReg(isa.Reg(10), 0x2000)
	m.SetReg(isa.Reg(11), 0x11223344)
	m.Mem.WriteBytes(0x2000, []byte{0xaa, 0xaa, 0xaa, 0xaa})
	mustRun(t, m)
	want := []byte{0xaa, 0x33, 0x44, 0xaa}
	for i, b := range want {
		if got := m.Mem.ByteAt(0x2000 + uint32(i)); got != b {
			t.Errorf("byte %#x = %#x, want %#x", 0x2000+i, got, b)
		}
	}
}

// TestHaltOnEndTarget: jumping to the address one past the last
// instruction halts the machine cleanly (the kernel epilogue pattern).
func TestHaltOnEndTarget(t *testing.T) {
	ops := []*encode.DecOp{jmp(isa.OpJMPI, isa.R1, pcOf(7))}
	for i := 0; i < 6; i++ {
		ops = append(ops, uop(isa.OpNOP, 0, 0, 0, 0))
	}
	m := New(seq(ops...), config.ConfigD(), nil)
	mustRun(t, m)
	if !m.Done() || m.Trap() != nil {
		t.Errorf("machine not cleanly halted: done=%v trap=%v", m.Done(), m.Trap())
	}
	if m.Issue() != 6 {
		t.Errorf("retired %d instructions, want 6", m.Issue())
	}
}
