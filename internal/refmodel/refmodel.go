// Package refmodel is the architectural reference model: an
// instruction-accurate, unpipelined interpreter for the full TM3270 ISA
// that executes decoded binaries sequentially, with none of the
// cycle-level machinery of the pipeline model (no caches, no stalls, no
// bus). Operation semantics are reimplemented independently of the isa
// package's Exec functions so the differential harness in
// internal/cosim cross-checks two genuinely separate encodings of the
// paper's Table 2 — a shared helper would turn a shared bug into a
// silent agreement.
//
// The model does honor the two architecturally visible timing features
// of the exposed pipeline: register results commit `latency`
// instructions after issue, and taken jumps redirect after the target's
// delay slots. Both are part of the ISA contract (a schedule that
// violates them computes different values), so an instruction-accurate
// model must reproduce them.
package refmodel

import (
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/prefetch"
)

// TrapKind classifies reference-model execution faults.
type TrapKind int

const (
	TrapNone TrapKind = iota
	// TrapBadOpcode: an operation slot decodes to an undefined opcode.
	TrapBadOpcode
	// TrapBadPair: a two-slot operation without its extension half, or a
	// stray extension half without a main half.
	TrapBadPair
	// TrapBadTarget: a taken jump whose target is not an instruction
	// boundary of the loaded binary.
	TrapBadTarget
	// TrapDelayViolation: a jump taken inside the delay window of an
	// earlier taken jump.
	TrapDelayViolation
	// TrapMMIO: a malformed access to the prefetch MMIO block.
	TrapMMIO
	// TrapUndefinedRead: strict mode only — a load touching a byte never
	// written (per-byte validity, the same granularity the pipeline
	// model's strict mode tracks).
	TrapUndefinedRead
	// TrapNullStore: strict mode only — a store into the reserved null
	// page.
	TrapNullStore
	// TrapWatchdog: the instruction budget was exhausted.
	TrapWatchdog
)

var trapNames = map[TrapKind]string{
	TrapNone:           "none",
	TrapBadOpcode:      "bad-opcode",
	TrapBadPair:        "bad-pair",
	TrapBadTarget:      "bad-jump-target",
	TrapDelayViolation: "delay-violation",
	TrapMMIO:           "mmio",
	TrapUndefinedRead:  "undefined-read",
	TrapNullStore:      "null-store",
	TrapWatchdog:       "watchdog",
}

func (k TrapKind) String() string {
	if s, ok := trapNames[k]; ok {
		return s
	}
	return fmt.Sprintf("trap%d", int(k))
}

// Trap is a reference-model execution fault with its architectural
// context: the instruction (issue index and PC), the slot and operation
// at fault, and the memory address for memory traps.
type Trap struct {
	Kind   TrapKind
	Reason string
	Issue  int64  // instructions retired before the fault
	Index  int    // instruction index in the decoded stream
	PC     uint32 // byte address of the faulting instruction
	Slot   int    // 1-based issue slot (0 when not slot-specific)
	Op     string // mnemonic (empty when not op-specific)
	Addr   uint32 // memory address (memory traps only)
}

func (t *Trap) Error() string {
	s := fmt.Sprintf("refmodel trap %s at issue %d pc %#x", t.Kind, t.Issue, t.PC)
	if t.Op != "" {
		s += fmt.Sprintf(" slot %d op %s", t.Slot, t.Op)
	}
	return s + ": " + t.Reason
}

// pendWrite is a register result in flight: the exposed pipeline
// commits it `latency` instructions after issue.
type pendWrite struct {
	at  int64
	reg isa.Reg
	val uint32
}

// Machine is the reference interpreter over one decoded binary.
type Machine struct {
	Target config.Target
	Mem    *Mem

	// MaxInstrs bounds execution (0 = the pipeline model's default
	// watchdog budget).
	MaxInstrs int64

	// StrictMem enables per-byte undefined-read and null-page-store
	// traps. Off by default, matching the pipeline model.
	StrictMem bool

	instrs []encode.DecInstr
	byAddr map[uint32]int // instruction byte address -> index

	regs [isa.NumRegs]uint32
	pend []pendWrite
	mmio [prefetch.NumRegions][3]uint32 // START, END, STRIDE per region

	issue         int64
	idx           int
	redirectAfter int64
	redirectTo    int
	done          bool
	trap          *Trap
}

// New builds a machine over a decoded instruction stream. The memory
// image may be shared-nothing per machine; the instruction stream is
// read-only.
func New(dec []encode.DecInstr, t config.Target, m *Mem) *Machine {
	if m == nil {
		m = NewMem()
	}
	mach := &Machine{
		Target:        t,
		Mem:           m,
		instrs:        dec,
		byAddr:        make(map[uint32]int, len(dec)+1),
		redirectAfter: -1,
	}
	for i := range dec {
		mach.byAddr[dec[i].Addr] = i
	}
	if n := len(dec); n > 0 {
		// The address one past the last instruction is a legal jump
		// target: it halts the machine.
		mach.byAddr[dec[n-1].Addr+uint32(dec[n-1].Size)] = n
	}
	mach.regs[isa.R1] = 1
	return mach
}

// SetReg initializes an architectural register (kernel arguments).
// Writes to the hardwired r0/r1 are dropped.
func (m *Machine) SetReg(r isa.Reg, v uint32) {
	if !r.Hardwired() && r.Valid() {
		m.regs[r] = v
	}
}

// Reg reads an architectural register.
func (m *Machine) Reg(r isa.Reg) uint32 {
	switch r {
	case isa.R0:
		return 0
	case isa.R1:
		return 1
	}
	return m.regs[r]
}

// Regs returns the architectural register file with the hardwired
// values materialized.
func (m *Machine) Regs() [isa.NumRegs]uint32 {
	s := m.regs
	s[isa.R0], s[isa.R1] = 0, 1
	return s
}

// MMIORegs returns the prefetch configuration bank (START, END, STRIDE
// per region) for final-state diffing.
func (m *Machine) MMIORegs() [prefetch.NumRegions][3]uint32 { return m.mmio }

// Done reports whether execution has finished (normally or by trap).
func (m *Machine) Done() bool { return m.done }

// Trap returns the fault that stopped the machine, or nil.
func (m *Machine) Trap() *Trap { return m.trap }

// Issue returns the number of instructions retired so far.
func (m *Machine) Issue() int64 { return m.issue }

// Index returns the index of the next instruction to execute.
func (m *Machine) Index() int { return m.idx }

// CommitDue applies the register writes due at the current issue index.
// Step does this implicitly; the lockstep harness calls it explicitly to
// observe post-commit pre-execute state at an instruction boundary.
func (m *Machine) CommitDue() { m.commit(m.issue) }

func (m *Machine) commit(issue int64) {
	if len(m.pend) == 0 {
		return
	}
	kept := m.pend[:0]
	for _, w := range m.pend {
		if w.at <= issue {
			if !w.reg.Hardwired() {
				m.regs[w.reg] = w.val
			}
		} else {
			kept = append(kept, w)
		}
	}
	m.pend = kept
}

func (m *Machine) stop(t *Trap) *Trap {
	t.Issue = m.issue
	t.Index = m.idx
	if m.idx < len(m.instrs) {
		t.PC = m.instrs[m.idx].Addr
	}
	m.trap = t
	m.done = true
	return t
}

// finish drains in-flight writes and halts the machine normally.
func (m *Machine) finish() {
	m.commit(m.issue + 64)
	m.done = true
}

// Run executes to completion and returns the trap, if any.
func (m *Machine) Run() *Trap {
	for !m.done {
		if t := m.Step(); t != nil {
			return t
		}
	}
	return m.trap
}

// gathered is one operation with its phase-1 operand values.
type gathered struct {
	op      *encode.DecOp
	info    *isa.OpInfo
	slot    int // 1-based
	execute bool
	src     [4]uint32
	dest    [2]isa.Reg
}

// Step executes one VLIW instruction: commit due writes, gather all
// operands against pre-instruction state, execute slots in order, then
// retire and follow any matured redirect.
func (m *Machine) Step() *Trap {
	if m.done {
		return m.trap
	}
	if m.idx >= len(m.instrs) {
		m.finish()
		return nil
	}
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 2_000_000_000
	}
	if m.issue >= maxInstrs {
		return m.stop(&Trap{Kind: TrapWatchdog,
			Reason: fmt.Sprintf("exceeded %d instructions", maxInstrs)})
	}
	m.commit(m.issue)

	in := &m.instrs[m.idx]

	// Phase 1: gather operands against pre-instruction register state.
	var evals [5]gathered
	n := 0
	for s := 0; s < 5; s++ {
		op := in.Slots[s]
		if op == nil {
			continue
		}
		if op.IsExt() {
			return m.stop(&Trap{Kind: TrapBadPair, Slot: s + 1,
				Reason: "extension half without a two-slot main half"})
		}
		info, ok := isa.InfoOK(isa.Opcode(op.Opcode))
		if !ok {
			return m.stop(&Trap{Kind: TrapBadOpcode, Slot: s + 1,
				Reason: fmt.Sprintf("undefined opcode %d", op.Opcode)})
		}
		g := m.Reg(op.Guard)&1 == 1
		if info.GuardInverted {
			g = !g
		}
		ev := gathered{op: op, info: info, slot: s + 1, execute: g}
		if info.TwoSlot {
			if s == 4 || in.Slots[s+1] == nil || !in.Slots[s+1].IsExt() {
				return m.stop(&Trap{Kind: TrapBadPair, Slot: s + 1, Op: info.Name,
					Reason: "two-slot operation without its extension half"})
			}
			ext := in.Slots[s+1]
			ev.src = [4]uint32{m.Reg(op.S1), m.Reg(op.S2), m.Reg(ext.S1), m.Reg(ext.S2)}
			ev.dest = [2]isa.Reg{op.D, ext.D}
			s++ // the extension half occupies the next slot
		} else {
			srcs := [2]isa.Reg{op.S1, op.S2}
			for k := 0; k < info.NSrc && k < 2; k++ {
				ev.src[k] = m.Reg(srcs[k])
			}
			ev.dest = [2]isa.Reg{op.D, 0}
		}
		evals[n] = ev
		n++
	}

	// Phase 2: execute in slot order.
	for i := 0; i < n; i++ {
		ev := &evals[i]
		if !ev.execute {
			continue
		}
		op, info := ev.op, ev.info
		code := isa.Opcode(op.Opcode)

		var loaded uint64
		if info.IsLoad || info.IsStore {
			addr := m.memAddr(code, op, &ev.src)
			var t *Trap
			switch {
			case code == isa.OpALLOCD:
				// Cache allocation only: no functional memory access.
			case info.IsLoad:
				loaded, t = m.load(addr, info.MemBytes)
			default:
				nBytes, v := storeBytes(code, &ev.src)
				t = m.store(addr, nBytes, v)
			}
			if t != nil {
				t.Slot, t.Op, t.Addr = ev.slot, info.Name, addr
				return m.stop(t)
			}
		}

		d0, d1 := execute(code, &ev.src, op.Imm, loaded)

		lat := int64(m.Target.OpLatency(code))
		dests := [2]uint32{d0, d1}
		for k := 0; k < info.NDest; k++ {
			m.pend = append(m.pend, pendWrite{
				at:  m.issue + lat,
				reg: ev.dest[k],
				val: dests[k],
			})
		}

		if info.IsJump {
			if m.redirectAfter >= 0 {
				return m.stop(&Trap{Kind: TrapDelayViolation, Slot: ev.slot, Op: info.Name,
					Reason: fmt.Sprintf("jump taken inside the delay window of the jump at issue %d",
						m.redirectAfter-int64(m.Target.JumpDelaySlots))})
			}
			ti, ok := m.byAddr[op.Target]
			if !ok {
				return m.stop(&Trap{Kind: TrapBadTarget, Slot: ev.slot, Op: info.Name,
					Addr:   op.Target,
					Reason: fmt.Sprintf("jump to %#x, not an instruction boundary", op.Target)})
			}
			m.redirectAfter = m.issue + int64(m.Target.JumpDelaySlots)
			m.redirectTo = ti
		}
	}

	m.issue++
	if m.redirectAfter >= 0 && m.issue > m.redirectAfter {
		m.idx = m.redirectTo
		m.redirectAfter = -1
	} else {
		m.idx++
	}
	if m.idx >= len(m.instrs) {
		m.finish()
	}
	return nil
}

// memAddr forms the effective address of a memory operation from the
// decoded operand fields.
func (m *Machine) memAddr(code isa.Opcode, op *encode.DecOp, src *[4]uint32) uint32 {
	switch code {
	case isa.OpLD32R, isa.OpLD16R, isa.OpULD16R, isa.OpLD8R, isa.OpULD8R,
		isa.OpSUPERLD32R:
		return src[0] + src[1]
	case isa.OpLDFRAC8:
		return src[0]
	default:
		return src[0] + op.Imm
	}
}

// checkMMIO validates an access against the prefetch MMIO block,
// mirroring the pipeline model's bus rules.
func (m *Machine) checkMMIO(addr uint32, n int) *Trap {
	if !prefetch.IsMMIO(addr) {
		if addr < prefetch.MMIOBase && addr+uint32(n) > prefetch.MMIOBase {
			return &Trap{Kind: TrapMMIO,
				Reason: fmt.Sprintf("%d-byte access straddles the prefetch MMIO block", n)}
		}
		return nil
	}
	switch {
	case !m.Target.HasRegionPrefetch:
		return &Trap{Kind: TrapMMIO,
			Reason: "prefetch MMIO access on a target without a region prefetcher"}
	case n != 4:
		return &Trap{Kind: TrapMMIO,
			Reason: fmt.Sprintf("%d-byte prefetch MMIO access (registers are 32-bit)", n)}
	case addr%4 != 0:
		return &Trap{Kind: TrapMMIO, Reason: "misaligned prefetch MMIO access"}
	}
	return nil
}

func (m *Machine) load(addr uint32, n int) (uint64, *Trap) {
	if t := m.checkMMIO(addr, n); t != nil {
		return 0, t
	}
	if prefetch.IsMMIO(addr) {
		off := addr - prefetch.MMIOBase
		if k := off % 16; k < 12 {
			return uint64(m.mmio[off/16][k/4]), nil
		}
		return 0, nil
	}
	if m.StrictMem && !m.Mem.Defined(addr, n) {
		return 0, &Trap{Kind: TrapUndefinedRead,
			Reason: fmt.Sprintf("%d-byte load touches never-written bytes", n)}
	}
	return m.Mem.Load(addr, n), nil
}

func (m *Machine) store(addr uint32, n int, v uint64) *Trap {
	if t := m.checkMMIO(addr, n); t != nil {
		return t
	}
	if prefetch.IsMMIO(addr) {
		off := addr - prefetch.MMIOBase
		if k := off % 16; k < 12 {
			m.mmio[off/16][k/4] = uint32(v)
		}
		return nil
	}
	if m.StrictMem && addr < 0x1000 {
		return &Trap{Kind: TrapNullStore,
			Reason: fmt.Sprintf("%d-byte store into the null page", n)}
	}
	m.Mem.Store(addr, n, v)
	return nil
}
