package refmodel

import (
	"math"
	"math/bits"

	"tm3270/internal/cabac"
	"tm3270/internal/isa"
)

// The operation semantics below are written independently of the isa
// package's Exec functions: the co-simulation harness cross-checks the
// two implementations against each other, so sharing helper code would
// turn a shared bug into a silent agreement. Only the CABAC probability
// tables are read from the cabac package — they are ISA constants.

func sat32(v int64) uint32 {
	switch {
	case v > math.MaxInt32:
		return 0x7fffffff
	case v < math.MinInt32:
		return 0x80000000
	}
	return uint32(v)
}

// sat16 clips to the signed 16-bit range and returns the low half image.
func sat16(v int64) uint32 {
	switch {
	case v > 32767:
		return 0x7fff
	case v < -32768:
		return 0x8000
	}
	return uint32(v) & 0xffff
}

func sat8u(v int32) uint32 {
	switch {
	case v > 255:
		return 255
	case v < 0:
		return 0
	}
	return uint32(v)
}

// clampS clips a signed value to [-2^n, 2^n-1]; widths above 30 degrade
// to 30, the widest representable symmetric range.
func clampS(v int32, n uint32) uint32 {
	if n > 30 {
		n = 30
	}
	lo, hi := -(int32(1) << n), int32(1)<<n-1
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return uint32(v)
}

// clampU clips a signed value to [0, 2^n-1]; widths above 31 degrade to
// 31 (the full non-negative int32 range).
func clampU(v int32, n uint32) uint32 {
	if n > 31 {
		n = 31
	}
	hi := int32(math.MaxInt32)
	if n < 31 {
		hi = int32(1)<<n - 1
	}
	if v < 0 {
		v = 0
	}
	if v > hi {
		v = hi
	}
	return uint32(v)
}

// lane8 extracts unsigned byte lane i of v; lane 0 is the most
// significant byte, matching the big-endian SIMD convention.
func lane8(v uint32, i uint) uint32 { return v >> (24 - 8*i) & 0xff }

func slane8(v uint32, i uint) int32 { return int32(int8(lane8(v, i))) }

func pack8(b0, b1, b2, b3 uint32) uint32 { return b0<<24 | b1<<16 | b2<<8 | b3 }

func shi16(v uint32) int32 { return int32(int16(v >> 16)) }
func slo16(v uint32) int32 { return int32(int16(v)) }

func cat16(hi, lo uint32) uint32 { return hi<<16 | lo&0xffff }

func fval(v uint32) float32 { return math.Float32frombits(v) }
func fimg(f float32) uint32 { return math.Float32bits(f) }

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func absDiff(a, b uint32) uint32 {
	if a >= b {
		return a - b
	}
	return b - a
}

// sad4 sums |a.lane - b.lane| over the four unsigned byte lanes.
func sad4(a, b uint32) uint32 {
	var s uint32
	for i := uint(0); i < 4; i++ {
		s += absDiff(lane8(a, i), lane8(b, i))
	}
	return s
}

// cabacStep is an independent transcription of the paper's Figure 2
// binary arithmetic decode step, sharing only the H.264 probability
// tables with the cabac package.
func cabacStep(value, rng, aligned, state, mps uint32) (v, r, st, m, bit uint32, consumed uint32) {
	rlps := cabac.RangeLPS(state, (rng>>6)&3)
	mpsRange := rng - rlps
	if value < mpsRange {
		v, r, bit, m, st = value, mpsRange, mps, mps, cabac.NextMPS(state)
	} else {
		v, r, bit = value-mpsRange, rlps, mps^1
		m = mps
		if state == 0 {
			m = mps ^ 1
		}
		st = cabac.NextLPS(state)
	}
	for r < 256 {
		v = v<<1 | aligned>>31
		r <<= 1
		aligned <<= 1
		consumed++
	}
	return
}

// storeBytes returns the width and value image of a store operation.
func storeBytes(op isa.Opcode, src *[4]uint32) (int, uint64) {
	switch op {
	case isa.OpST32D:
		return 4, uint64(src[1])
	case isa.OpST16D:
		return 2, uint64(src[1] & 0xffff)
	default: // st8d
		return 1, uint64(src[1] & 0xff)
	}
}

// execute computes the destination values of one operation from its
// gathered sources. For loads, `loaded` carries the raw big-endian
// bytes fetched by the machine (the machine owns address formation and
// the trap path); jumps and stores produce no destinations here.
func execute(op isa.Opcode, src *[4]uint32, imm uint32, loaded uint64) (d0, d1 uint32) {
	a, b := src[0], src[1]
	switch op {
	case isa.OpNOP:
	case isa.OpIIMM:
		d0 = imm

	// Integer ALU.
	case isa.OpIADD:
		d0 = a + b
	case isa.OpISUB:
		d0 = a - b
	case isa.OpIADDI:
		d0 = a + imm
	case isa.OpIMIN:
		d0 = a
		if int32(b) < int32(a) {
			d0 = b
		}
	case isa.OpIMAX:
		d0 = a
		if int32(b) > int32(a) {
			d0 = b
		}
	case isa.OpIAVGONEP:
		d0 = uint32((int64(int32(a)) + int64(int32(b)) + 1) >> 1)
	case isa.OpBITAND:
		d0 = a & b
	case isa.OpBITOR:
		d0 = a | b
	case isa.OpBITXOR:
		d0 = a ^ b
	case isa.OpBITANDINV:
		d0 = a & ^b
	case isa.OpBITINV:
		d0 = ^a
	case isa.OpSEX8:
		d0 = uint32(int32(int8(a)))
	case isa.OpSEX16:
		d0 = uint32(int32(int16(a)))
	case isa.OpZEX8:
		d0 = a & 0xff
	case isa.OpZEX16:
		d0 = a & 0xffff
	case isa.OpIEQL:
		d0 = b2u(a == b)
	case isa.OpINEQ:
		d0 = b2u(a != b)
	case isa.OpIGTR:
		d0 = b2u(int32(a) > int32(b))
	case isa.OpIGEQ:
		d0 = b2u(int32(a) >= int32(b))
	case isa.OpILES:
		d0 = b2u(int32(a) < int32(b))
	case isa.OpILEQ:
		d0 = b2u(int32(a) <= int32(b))
	case isa.OpUGTR:
		d0 = b2u(a > b)
	case isa.OpUGEQ:
		d0 = b2u(a >= b)
	case isa.OpULES:
		d0 = b2u(a < b)
	case isa.OpULEQ:
		d0 = b2u(a <= b)
	case isa.OpIEQLI:
		d0 = b2u(a == imm)
	case isa.OpINEQI:
		d0 = b2u(a != imm)
	case isa.OpIGTRI:
		d0 = b2u(int32(a) > int32(imm))
	case isa.OpILESI:
		d0 = b2u(int32(a) < int32(imm))
	case isa.OpIZERO:
		d0 = b2u(a == 0)
	case isa.OpINONZERO:
		d0 = b2u(a != 0)

	// Shifter.
	case isa.OpASL:
		d0 = a << (b & 31)
	case isa.OpASR:
		d0 = uint32(int32(a) >> (b & 31))
	case isa.OpLSR:
		d0 = a >> (b & 31)
	case isa.OpROL:
		d0 = bits.RotateLeft32(a, int(b&31))
	case isa.OpASLI:
		d0 = a << (imm & 31)
	case isa.OpASRI:
		d0 = uint32(int32(a) >> (imm & 31))
	case isa.OpLSRI:
		d0 = a >> (imm & 31)
	case isa.OpROLI:
		d0 = bits.RotateLeft32(a, int(imm&31))
	case isa.OpICLZ:
		d0 = uint32(bits.LeadingZeros32(a))
	case isa.OpFUNSHIFT1:
		d0 = a<<8 | b>>24
	case isa.OpFUNSHIFT2:
		d0 = a<<16 | b>>16
	case isa.OpFUNSHIFT3:
		d0 = a<<24 | b>>8

	// Multiplier complex.
	case isa.OpIMUL:
		d0 = uint32(int32(a) * int32(b))
	case isa.OpIMULM:
		d0 = uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	case isa.OpUMULM:
		d0 = uint32(uint64(a) * uint64(b) >> 32)
	case isa.OpDSPIMUL:
		d0 = sat32(int64(int32(a)) * int64(int32(b)))
	case isa.OpIFIR16:
		d0 = uint32(shi16(a)*shi16(b) + slo16(a)*slo16(b))
	case isa.OpUFIR16:
		d0 = uint32(int32(a>>16)*int32(b>>16) + int32(a&0xffff)*int32(b&0xffff))
	case isa.OpIFIR8UI:
		var s int32
		for i := uint(0); i < 4; i++ {
			s += int32(lane8(a, i)) * slane8(b, i)
		}
		d0 = uint32(s)
	case isa.OpUME8UU:
		d0 = sad4(a, b)
	case isa.OpUME8II:
		var s uint32
		for i := uint(0); i < 4; i++ {
			d := slane8(a, i) - slane8(b, i)
			if d < 0 {
				d = -d
			}
			s += uint32(d)
		}
		d0 = s

	// DSP ALU.
	case isa.OpDSPIADD:
		d0 = sat32(int64(int32(a)) + int64(int32(b)))
	case isa.OpDSPISUB:
		d0 = sat32(int64(int32(a)) - int64(int32(b)))
	case isa.OpDSPIABS:
		v := int64(int32(a))
		if v < 0 {
			v = -v
		}
		d0 = sat32(v)
	case isa.OpDSPIDUALADD:
		d0 = sat16(int64(shi16(a))+int64(shi16(b)))<<16 |
			sat16(int64(slo16(a))+int64(slo16(b)))
	case isa.OpDSPIDUALSUB:
		d0 = sat16(int64(shi16(a))-int64(shi16(b)))<<16 |
			sat16(int64(slo16(a))-int64(slo16(b)))
	case isa.OpDSPIDUALMUL:
		d0 = sat16(int64(shi16(a))*int64(shi16(b)))<<16 |
			sat16(int64(slo16(a))*int64(slo16(b)))
	case isa.OpDSPUQUADADDUI:
		var o [4]uint32
		for i := uint(0); i < 4; i++ {
			o[i] = sat8u(int32(lane8(a, i)) + slane8(b, i))
		}
		d0 = pack8(o[0], o[1], o[2], o[3])
	case isa.OpQUADAVG:
		var o [4]uint32
		for i := uint(0); i < 4; i++ {
			o[i] = (lane8(a, i) + lane8(b, i) + 1) >> 1
		}
		d0 = pack8(o[0], o[1], o[2], o[3])
	case isa.OpQUADUMIN:
		var o [4]uint32
		for i := uint(0); i < 4; i++ {
			o[i] = lane8(a, i)
			if l := lane8(b, i); l < o[i] {
				o[i] = l
			}
		}
		d0 = pack8(o[0], o[1], o[2], o[3])
	case isa.OpQUADUMAX:
		var o [4]uint32
		for i := uint(0); i < 4; i++ {
			o[i] = lane8(a, i)
			if l := lane8(b, i); l > o[i] {
				o[i] = l
			}
		}
		d0 = pack8(o[0], o[1], o[2], o[3])
	case isa.OpICLIPI:
		d0 = clampS(int32(a), imm)
	case isa.OpUCLIPI:
		d0 = clampU(int32(a), imm)
	case isa.OpDUALICLIPI:
		d0 = cat16(clampS(shi16(a), imm), clampS(slo16(a), imm))
	case isa.OpDUALUCLIPI:
		d0 = cat16(clampU(shi16(a), imm), clampU(slo16(a), imm))
	case isa.OpPACK16LSB:
		d0 = cat16(a&0xffff, b&0xffff)
	case isa.OpPACK16MSB:
		d0 = cat16(a>>16, b>>16)
	case isa.OpPACKBYTES:
		d0 = (a&0xff)<<8 | b&0xff
	case isa.OpMERGELSB:
		d0 = pack8(lane8(a, 2), lane8(b, 2), lane8(a, 3), lane8(b, 3))
	case isa.OpMERGEMSB:
		d0 = pack8(lane8(a, 0), lane8(b, 0), lane8(a, 1), lane8(b, 1))
	case isa.OpMERGEDUAL16LSB:
		d0 = cat16(b&0xffff, a&0xffff)
	case isa.OpUBYTESEL:
		// Selector 0 picks the least significant byte.
		d0 = a >> (8 * (b & 3)) & 0xff
	case isa.OpIBYTESEL:
		d0 = uint32(int32(int8(a >> (8 * (b & 3)))))
	case isa.OpQUADUMULMSB:
		var o [4]uint32
		for i := uint(0); i < 4; i++ {
			o[i] = lane8(a, i) * lane8(b, i) >> 8
		}
		d0 = pack8(o[0], o[1], o[2], o[3])

	// Floating point.
	case isa.OpFADD:
		d0 = fimg(fval(a) + fval(b))
	case isa.OpFSUB:
		d0 = fimg(fval(a) - fval(b))
	case isa.OpFABSVAL:
		d0 = a & 0x7fffffff
	case isa.OpIFLOAT:
		d0 = fimg(float32(int32(a)))
	case isa.OpUFLOAT:
		d0 = fimg(float32(a))
	case isa.OpIFIXIEEE:
		r := math.RoundToEven(float64(fval(a)))
		switch {
		case math.IsNaN(r):
			d0 = 0
		case r > 2147483647:
			d0 = 0x7fffffff
		case r < -2147483648:
			d0 = 0x80000000
		default:
			d0 = uint32(int32(r))
		}
	case isa.OpUFIXIEEE:
		r := math.RoundToEven(float64(fval(a)))
		switch {
		case math.IsNaN(r) || r < 0:
			d0 = 0
		case r > 4294967295:
			d0 = 0xffffffff
		default:
			d0 = uint32(r)
		}
	case isa.OpFEQL:
		d0 = b2u(fval(a) == fval(b))
	case isa.OpFGTR:
		d0 = b2u(fval(a) > fval(b))
	case isa.OpFGEQ:
		d0 = b2u(fval(a) >= fval(b))
	case isa.OpFMUL:
		d0 = fimg(fval(a) * fval(b))
	case isa.OpFDIV:
		d0 = fimg(fval(a) / fval(b))
	case isa.OpFSQRT:
		d0 = fimg(float32(math.Sqrt(float64(fval(a)))))

	// Jumps: redirect handling lives in the machine; no destinations.
	case isa.OpJMPI, isa.OpJMPT, isa.OpJMPF:

	// Loads: extract from the raw bytes the machine fetched.
	case isa.OpLD32D, isa.OpLD32R:
		d0 = uint32(loaded)
	case isa.OpLD16D, isa.OpLD16R:
		d0 = uint32(int32(int16(loaded)))
	case isa.OpULD16D, isa.OpULD16R:
		d0 = uint32(loaded) & 0xffff
	case isa.OpLD8D, isa.OpLD8R:
		d0 = uint32(int32(int8(loaded)))
	case isa.OpULD8D, isa.OpULD8R:
		d0 = uint32(loaded) & 0xff

	// Stores carry no destination; the machine performs the write.
	case isa.OpST32D, isa.OpST16D, isa.OpST8D, isa.OpALLOCD:

	case isa.OpLDFRAC8:
		f := b & 0xf
		byteAt := func(i uint) uint32 { return uint32(loaded>>(8*(4-i))) & 0xff }
		var o [4]uint32
		for i := uint(0); i < 4; i++ {
			o[i] = (byteAt(i)*(16-f) + byteAt(i+1)*f + 8) >> 4
		}
		d0 = pack8(o[0], o[1], o[2], o[3])

	// Two-slot super operations.
	case isa.OpSUPERDUALIMIX:
		c, d := src[2], src[3]
		d0 = sat32(int64(shi16(a))*int64(shi16(b)) + int64(shi16(c))*int64(shi16(d)))
		d1 = sat32(int64(slo16(a))*int64(slo16(b)) + int64(slo16(c))*int64(slo16(d)))
	case isa.OpSUPERLD32R:
		d0 = uint32(loaded >> 32)
		d1 = uint32(loaded)
	case isa.OpSUPERCABACSTR:
		_, _, _, _, bit, consumed := cabacStep(a>>16, a&0xffff, 0, src[3]>>16&63, src[3]&1)
		d0 = b + consumed
		d1 = bit
	case isa.OpSUPERCABACCTX:
		v, r, st, mp, _, _ := cabacStep(a>>16, a&0xffff, src[2]<<(b&31), src[3]>>16&63, src[3]&1)
		d0 = cat16(v, r)
		d1 = cat16(st, mp)
	case isa.OpSUPERUME8UU:
		d0 = sad4(a, src[2]) + sad4(b, src[3])
	}
	return d0, d1
}
