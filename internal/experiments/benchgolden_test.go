package experiments_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"tm3270/internal/experiments"
)

// TestBenchJSONParallelGolden asserts the batch runner's headline
// determinism guarantee at the serialization boundary: the marshaled
// bench report of a 4-way parallel run is byte-identical to the serial
// one. Anything order-dependent or state-leaking between concurrent
// runs — a shared spec, a racy counter, out-of-order aggregation —
// breaks this equality.
func TestBenchJSONParallelGolden(t *testing.T) {
	p := quick()
	serial, err := experiments.BenchJSON(p, true, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := experiments.BenchJSON(p, true, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := json.MarshalIndent(serial, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.MarshalIndent(par, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		for i := range sb {
			if i >= len(pb) || sb[i] != pb[i] {
				lo := max(0, i-80)
				t.Fatalf("parallel bench JSON diverges from serial at byte %d:\nserial:   ...%s\nparallel: ...%s",
					i, sb[lo:min(len(sb), i+80)], pb[lo:min(len(pb), i+80)])
			}
		}
		t.Fatalf("parallel bench JSON is a strict prefix of serial (%d vs %d bytes)", len(pb), len(sb))
	}
}
