package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"

	"tm3270/internal/config"
	"tm3270/internal/runner"
	"tm3270/internal/workloads"
)

// WCETTable reports the static worst-case cycle bound of every workload
// against the cycles tmsim measures, per target configuration. The
// ratio column (bound/measured) is the tightness of the static model;
// soundness (bound >= measured) is enforced by a test, this table shows
// how much headroom the proofs leave.
func WCETTable(w io.Writer, p workloads.Params) error {
	targets := []config.Target{
		config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
	}
	fmt.Fprintf(w, "Static worst-case cycle bounds vs measured cycles\n")
	fmt.Fprintf(w, "%-14s %-8s %14s %14s %7s  %s\n",
		"workload", "target", "bound", "measured", "ratio", "loops (bound@source)")
	for _, name := range workloads.Names() {
		for _, tgt := range targets {
			spec, err := workloads.ByName(name, p)
			if err != nil {
				return err
			}
			if spec.TM3270Only && !tgt.HasRegionPrefetch {
				continue
			}
			art, err := runner.CompileWorkload(spec, tgt)
			var serr *runner.ScheduleError
			if errors.As(err, &serr) {
				continue
			}
			if err != nil {
				return err
			}
			cb, err := art.CycleBound(&tgt, art.VerifyOptions(spec))
			if err != nil {
				return err
			}
			short := shortTarget(tgt)
			if !cb.Bounded {
				fmt.Fprintf(w, "%-14s %-8s %14s %14s %7s  %v\n",
					name, short, "unbounded", "-", "-", cb.Notes)
				continue
			}
			res, err := runner.RunContext(context.Background(), spec, tgt,
				runner.WithArtifact(art))
			if err != nil {
				return fmt.Errorf("%s on %s: %w", name, tgt.Name, err)
			}
			meas := int64(res.Stats.Cycles)
			loops := ""
			for i, l := range cb.Loops {
				if i > 0 {
					loops += " "
				}
				loops += fmt.Sprintf("%d@%s", l.Bound, l.Source)
			}
			fmt.Fprintf(w, "%-14s %-8s %14d %14d %7.2f  %s\n",
				name, short, cb.Cycles, meas, float64(cb.Cycles)/float64(meas), loops)
		}
	}
	return nil
}

func shortTarget(t config.Target) string {
	switch t.Name {
	case config.ConfigA().Name:
		return "A"
	case config.ConfigB().Name:
		return "B"
	case config.ConfigC().Name:
		return "C"
	default:
		return "D"
	}
}
