package experiments_test

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/experiments"
	"tm3270/internal/faults"
	"tm3270/internal/mem"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/telemetry"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// buildMachine assembles a ready-to-run machine for a registry workload
// (the experiments.Run pipeline, stopped before Run so telemetry can be
// armed first).
func buildMachine(t *testing.T, name string, p workloads.Params, tgt config.Target) *tmsim.Machine {
	t.Helper()
	w, err := workloads.ByName(name, p)
	if err != nil {
		t.Fatal(err)
	}
	code, err := sched.Schedule(w.Prog, tgt)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := regalloc.Allocate(w.Prog)
	if err != nil {
		t.Fatal(err)
	}
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			t.Fatal(err)
		}
	}
	m, err := tmsim.New(code, rm, image)
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range w.Args {
		m.SetReg(v, val)
	}
	return m
}

// TestSnapshotDeterminism runs the same seeded fault-injected workload
// twice and requires bit-identical counter snapshots: the telemetry
// layer must not perturb the simulation, and the simulation must stay
// deterministic under it.
func TestSnapshotDeterminism(t *testing.T) {
	p := workloads.Small()
	spec, err := faults.ParseSpec("busdelay:0.05:7")
	if err != nil {
		t.Fatal(err)
	}
	run := func() telemetry.Snapshot {
		m := buildMachine(t, "blockwalk_pf", p, config.ConfigD())
		inj := faults.New(spec, 42)
		inj.Arm(m)
		if err := m.RunContext(context.Background()); err != nil {
			t.Fatal(err)
		}
		inj.Disarm(m)
		return m.Registry().Snapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded snapshots differ:\n%v\n%v", a, b)
	}
	if a.Get("sim.cycles") == 0 || a.Get("prefetch.issued") == 0 {
		t.Fatalf("degenerate snapshot: %v", a)
	}
}

// TestStallIdentity checks the cycle-accounting invariant on both write
// -miss policies: the disjoint per-cause stall counters sum exactly to
// cycles minus issue cycles, and the tmsim splits reconcile with their
// totals.
func TestStallIdentity(t *testing.T) {
	p := workloads.Small()
	for _, tgt := range []config.Target{config.ConfigA(), config.ConfigD()} {
		names := []string{"memcpy", "mpeg2_b", "majority_sel", "blockwalk"}
		if tgt.HasRegionPrefetch {
			// The MMIO-programmed variant traps on targets without the
			// region prefetcher.
			names = append(names, "blockwalk_pf")
		}
		for _, name := range names {
			m := buildMachine(t, name, p, tgt)
			if err := m.RunContext(context.Background()); err != nil {
				t.Fatal(err)
			}
			s := m.Stats
			if got := s.DataMissStalls + s.DataInFlightStalls + s.DataCWBStalls; got != s.DataStalls {
				t.Errorf("%s on %s: data stall split sums to %d, total %d",
					name, tgt.Name, got, s.DataStalls)
			}
			if s.JumpStalls > s.FetchStalls {
				t.Errorf("%s on %s: jump stalls %d exceed fetch stalls %d",
					name, tgt.Name, s.JumpStalls, s.FetchStalls)
			}
			snap := m.Registry().Snapshot()
			if got, want := snap.Sum(tmsim.StallCounterNames...), s.Cycles-s.Instrs; got != want {
				t.Errorf("%s on %s: per-cause stall counters sum to %d, want cycles-instrs = %d",
					name, tgt.Name, got, want)
			}
			// The dcache's own cause accounting must agree with what the
			// core attributed.
			if got := m.DC.Stats.StallTotal(); got != s.DataStalls {
				t.Errorf("%s on %s: dcache stall causes sum to %d, core saw %d",
					name, tgt.Name, got, s.DataStalls)
			}
		}
	}
}

// TestProfileReconciles requires the cycle-attribution profile to
// account for every cycle of the run, per cause.
func TestProfileReconciles(t *testing.T) {
	p := workloads.Small()
	for _, name := range []string{"mpeg2_b", "blockwalk_pf"} {
		m := buildMachine(t, name, p, config.ConfigD())
		prof := m.EnableProfile()
		if err := m.RunContext(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := prof.TotalCycles(); got != m.Stats.Cycles {
			t.Errorf("%s: profile attributes %d cycles, run took %d", name, got, m.Stats.Cycles)
		}
		if got := prof.Total(telemetry.CauseExecute); got != m.Stats.Instrs {
			t.Errorf("%s: execute cycles %d, instrs %d", name, got, m.Stats.Instrs)
		}
		fetch := prof.Total(telemetry.CauseFetch) + prof.Total(telemetry.CauseJump)
		if fetch != m.Stats.FetchStalls {
			t.Errorf("%s: profiled fetch stalls %d, stats %d", name, fetch, m.Stats.FetchStalls)
		}
		data := prof.Total(telemetry.CauseDataMiss) +
			prof.Total(telemetry.CauseDataInFlight) + prof.Total(telemetry.CauseDataCWB)
		if data != m.Stats.DataStalls {
			t.Errorf("%s: profiled data stalls %d, stats %d", name, data, m.Stats.DataStalls)
		}
		if len(prof.TopN(5)) == 0 {
			t.Errorf("%s: no hotspots", name)
		}
	}
}

// TestEventTraceRoundTrip runs with the structured trace armed and
// requires a valid Chrome trace-event array with monotonic timestamps
// that survives encoding/json.
func TestEventTraceRoundTrip(t *testing.T) {
	p := workloads.Small()
	// Config A exercises fetch-on-write-miss (CWB parking events);
	// config D exercises prefetch fills.
	for _, tgt := range []config.Target{config.ConfigA(), config.ConfigD()} {
		m := buildMachine(t, "mpeg2_b", p, tgt)
		tr := telemetry.NewTrace(0)
		m.SetEventTrace(tr)
		if err := m.RunContext(context.Background()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var events []telemetry.Event
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("%s: trace is not a valid JSON event array: %v", tgt.Name, err)
		}
		if len(events) < 100 {
			t.Fatalf("%s: suspiciously small trace (%d events)", tgt.Name, len(events))
		}
		var last int64 = -1
		kinds := map[string]bool{}
		for _, e := range events {
			if e.Ph == "M" {
				continue
			}
			if e.TS < last {
				t.Fatalf("%s: ts %d after %d: not monotonic", tgt.Name, e.TS, last)
			}
			last = e.TS
			kinds[e.Cat] = true
		}
		for _, want := range []string{"issue", "bus"} {
			if !kinds[want] {
				t.Errorf("%s: no %q events in trace", tgt.Name, want)
			}
		}
	}
}

// TestBenchJSON builds the quick-mode machine-readable bench report,
// writes it, and re-reads it through the schema check.
func TestBenchJSON(t *testing.T) {
	p := workloads.Small()
	rep, err := experiments.BenchJSON(p, true, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != len(experiments.BenchWorkloadNames()) {
		t.Errorf("report has %d workloads, want %d",
			len(rep.Workloads), len(experiments.BenchWorkloadNames()))
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := experiments.WriteBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := experiments.ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Error("report does not survive the disk round-trip")
	}

	// A corrupted counter must fail the schema check.
	back.Workloads[0].Counters["stall.jump"] += 7
	if err := back.Validate(); err == nil {
		t.Error("validation accepted a broken stall identity")
	}
}
