package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"tm3270/internal/experiments"
	"tm3270/internal/workloads"
)

func quick() workloads.Params {
	p := workloads.Small()
	p.CabacIBits, p.CabacPBits, p.CabacBBits = 3000, 2500, 2000
	return p
}

// TestFigure7Shape runs the whole Figure 7 matrix at test scale and
// checks the paper's qualitative claims that survive downscaling.
func TestFigure7Shape(t *testing.T) {
	rows, err := experiments.Figure7(quick(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11 (Table 5)", len(rows))
	}
	byName := map[string]experiments.Figure7Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		// D is at least as fast as C (more cache, same frequency) up to
		// small conflict noise.
		if r.RelD < r.RelC*0.93 {
			t.Errorf("%s: D (%.2f) substantially below C (%.2f)", r.Workload, r.RelD, r.RelC)
		}
		// C is faster than B (frequency).
		if r.RelC <= r.RelB {
			t.Errorf("%s: C (%.2f) not above B (%.2f)", r.Workload, r.RelC, r.RelB)
		}
	}
	_, _, d := experiments.Figure7Average(rows)
	if d < 1.0 {
		t.Errorf("average D relative performance %.2f < 1: TM3270 must win", d)
	}
	var buf bytes.Buffer
	experiments.PrintFigure7(&buf, rows)
	for _, want := range []string{"memcpy", "mpeg2_a", "average"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("printed table missing %q", want)
		}
	}
}

// TestTable3Shape checks the CABAC measurement invariants of Table 3.
func TestTable3Shape(t *testing.T) {
	rows, err := experiments.Table3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if !(rows[0].Field == "I" && rows[1].Field == "P" && rows[2].Field == "B") {
		t.Fatalf("field order %v", rows)
	}
	for _, r := range rows {
		if s := r.Speedup(); s < 1.2 || s > 2.2 {
			t.Errorf("%s: speedup %.2f outside plausible band", r.Field, s)
		}
		if r.RefPerBit() <= r.OptPerBit() {
			t.Errorf("%s: optimized not cheaper", r.Field)
		}
	}
	if !(rows[0].RefPerBit() < rows[1].RefPerBit() && rows[1].RefPerBit() < rows[2].RefPerBit()) {
		t.Errorf("instr/bit ordering I < P < B violated: %.1f %.1f %.1f",
			rows[0].RefPerBit(), rows[1].RefPerBit(), rows[2].RefPerBit())
	}
	var buf bytes.Buffer
	experiments.PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("printed table missing header")
	}
}

// TestStaticTablesRender smoke-tests the static table printers.
func TestStaticTablesRender(t *testing.T) {
	var buf bytes.Buffer
	experiments.Table1(&buf)
	experiments.Table6(&buf)
	out := buf.String()
	for _, want := range []string{"128 32-bit registers", "31",
		"allocate-on-write-miss", "fetch-on-write-miss", "240 MHz", "350 MHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("static tables missing %q", want)
		}
	}
}

// TestFigure1And3AndAblation smoke-tests the remaining generators.
func TestFigure1And3AndAblation(t *testing.T) {
	p := quick()
	var buf bytes.Buffer
	if err := experiments.Figure1(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bytes/instr") {
		t.Error("figure 1 output incomplete")
	}
	buf.Reset()
	if err := experiments.Figure3(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("figure 3 output incomplete")
	}
	buf.Reset()
	if err := experiments.Ablation(&buf, 48, 32); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "me_frac8_pf") {
		t.Error("ablation output incomplete")
	}
}

// TestTable4Renders checks the area/power generator end to end.
func TestTable4Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := experiments.Table4(&buf, quick()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"8.08", "0.999", "mp3_synth", "0.8V"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 output missing %q", want)
		}
	}
}

// TestLineSizeSweep pins the capacity/line-size interaction that
// motivated the TM3270's 128-byte lines: at 16 KB the small lines win,
// at 128 KB the large lines win, on a working set larger than both.
func TestLineSizeSweep(t *testing.T) {
	p := workloads.Small()
	p.Mpeg2W, p.Mpeg2H = 320, 96
	p.Mpeg2Frames = 2
	var buf bytes.Buffer
	if err := experiments.LineSizeSweep(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "capacity") {
		t.Fatalf("sweep output incomplete:\n%s", out)
	}
	t.Log("\n" + out)
}
