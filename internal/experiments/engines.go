package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// EngineRow is the measured retire rate of both execution engines on
// one target: the full workload suite, precompiled, execution time
// only (compilation and memory-image construction excluded).
type EngineRow struct {
	Target     string
	Workloads  int
	Instrs     int64         // retired instructions, identical per engine
	InterpTime time.Duration // wall-clock execution, interpreter
	FastTime   time.Duration // wall-clock execution, block-cache engine
}

// InterpRate returns the interpreter's retire rate in M instrs/s.
func (r *EngineRow) InterpRate() float64 {
	return float64(r.Instrs) / r.InterpTime.Seconds() / 1e6
}

// FastRate returns the block-cache engine's retire rate in M instrs/s.
func (r *EngineRow) FastRate() float64 {
	return float64(r.Instrs) / r.FastTime.Seconds() / 1e6
}

// Speedup returns the block-cache engine's speedup over the interpreter.
func (r *EngineRow) Speedup() float64 {
	return r.InterpTime.Seconds() / r.FastTime.Seconds()
}

// EngineComparison measures both execution engines over every
// schedulable workload of the suite on each target: one row per
// target, instruction counts cross-checked between engines (the two
// must retire identical totals — a mismatch is an engine bug, not a
// measurement artifact).
func EngineComparison(p workloads.Params, targets []config.Target) ([]EngineRow, error) {
	var rows []EngineRow
	for _, tgt := range targets {
		row := EngineRow{Target: tgt.Name}
		type prep struct {
			w   *workloads.Spec
			art *runner.Artifact
		}
		var preps []prep
		for _, name := range workloads.Names() {
			w, err := workloads.ByName(name, p)
			if err != nil {
				return nil, err
			}
			art, err := runner.CompileWorkload(w, tgt)
			if err != nil {
				var serr *runner.ScheduleError
				if errors.As(err, &serr) {
					continue // workload needs operations this target lacks
				}
				return nil, err
			}
			preps = append(preps, prep{w, art})
		}
		run := func(pr prep, eng tmsim.Engine) (int64, time.Duration, error) {
			image := mem.NewFunc()
			if pr.w.Init != nil {
				if err := pr.w.Init(image); err != nil {
					return 0, 0, fmt.Errorf("%s on %s: init: %w", pr.w.Name, tgt.Name, err)
				}
			}
			ld := runner.Load(pr.art, image, runner.WithEngine(eng))
			for v, val := range pr.w.Args {
				ld.Machine.SetReg(v, val)
			}
			start := time.Now()
			err := ld.RunContext(context.Background())
			return ld.Machine.Stats.Instrs, time.Since(start), err
		}
		for _, pr := range preps {
			iInstrs, iTime, err := run(pr, tmsim.EngineInterp)
			if err != nil {
				var trap *tmsim.TrapError
				if errors.As(err, &trap) {
					// The workload faults on this target (e.g. prefetch
					// MMIO without the unit); both engines trap
					// identically, so it contributes no measurement.
					continue
				}
				return nil, err
			}
			fInstrs, fTime, err := run(pr, tmsim.EngineBlockCache)
			if err != nil {
				return nil, fmt.Errorf("%s on %s (blockcache): %w", pr.w.Name, tgt.Name, err)
			}
			if fInstrs != iInstrs {
				return nil, fmt.Errorf("%s on %s: engines retired different totals: interp %d, blockcache %d",
					pr.w.Name, tgt.Name, iInstrs, fInstrs)
			}
			row.Workloads++
			row.Instrs += iInstrs
			row.InterpTime += iTime
			row.FastTime += fTime
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintEngineComparison renders the retire-rate table.
func PrintEngineComparison(w io.Writer, rows []EngineRow) {
	fmt.Fprintln(w, "Execution-engine retire rate (full workload suite per target,")
	fmt.Fprintln(w, "precompiled, execution time only)")
	fmt.Fprintf(w, "%-34s %5s %12s %12s %12s %8s\n",
		"target", "wkld", "instrs", "interp M/s", "fast M/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %5d %12d %12.2f %12.2f %7.2fx\n",
			r.Target, r.Workloads, r.Instrs, r.InterpRate(), r.FastRate(), r.Speedup())
	}
}
