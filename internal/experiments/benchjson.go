package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"tm3270/internal/config"
	"tm3270/internal/runner"
	"tm3270/internal/telemetry"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// BenchSchema versions the machine-readable bench format. Bump it on
// any incompatible change to BenchReport; trajectory consumers key on
// it before parsing.
const BenchSchema = "tm3270-bench/v1"

// BenchReport is the versioned machine-readable result of a bench run:
// per-workload cycle counts, CPI/OPI and the full telemetry snapshot.
// It is the `BENCH_*.json` trajectory format.
type BenchReport struct {
	Schema    string           `json:"schema"`
	Target    string           `json:"target"`
	Quick     bool             `json:"quick"`
	Workloads []WorkloadResult `json:"workloads"`
}

// WorkloadResult is one workload's entry in the report.
type WorkloadResult struct {
	Name     string             `json:"name"`
	Cycles   int64              `json:"cycles"`
	Instrs   int64              `json:"instrs"`
	CPI      float64            `json:"cpi"`
	OPI      float64            `json:"opi"`
	Seconds  float64            `json:"seconds"`
	Counters telemetry.Snapshot `json:"counters"`
}

// BenchWorkloadNames is the workload set of the JSON bench: the Figure 7
// evaluation kernels plus the prefetch-sensitive extras, so the
// trajectory captures both core IPC and memory-system timeliness.
func BenchWorkloadNames() []string {
	return append(workloads.Table5Names(), "mp3_synth", "blockwalk", "blockwalk_pf")
}

// BenchJSON runs the bench workload set on the TM3270 (configuration D)
// through the batch runner and assembles the report. Parallelism only
// changes wall-clock time: every run is isolated, the simulator is
// deterministic and workload entries are aggregated in job order, so
// the report is byte-identical for any parallel setting (<=1 serial,
// <=0 GOMAXPROCS) — asserted by TestBenchJSONParallelGolden. A non-nil
// cache shares compile artifacts with other experiments of the process.
func BenchJSON(p workloads.Params, quick bool, parallel int, cache *runner.Cache) (*BenchReport, error) {
	t := config.ConfigD()
	rep := &BenchReport{Schema: BenchSchema, Target: t.Name, Quick: quick}
	names := BenchWorkloadNames()
	b := runner.Batch{Params: p, Parallel: parallel, Cache: cache}
	for i, jr := range b.Run(context.Background(), runner.Matrix(names, []config.Target{t})) {
		if jr.Err != nil {
			return nil, jr.Err
		}
		r := jr.Result
		rep.Workloads = append(rep.Workloads, WorkloadResult{
			Name:     names[i],
			Cycles:   r.Stats.Cycles,
			Instrs:   r.Stats.Instrs,
			CPI:      r.Stats.CPI(),
			OPI:      r.Stats.OPI(),
			Seconds:  r.Seconds(),
			Counters: r.Machine.Registry().Snapshot(),
		})
	}
	return rep, nil
}

// Validate schema-checks a report: version, non-empty workload set, and
// the cycle-accounting identity that the disjoint per-cause stall
// counters sum to cycles minus issue cycles for every workload.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("benchjson: schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("benchjson: no workloads")
	}
	for _, w := range r.Workloads {
		if w.Name == "" || w.Cycles <= 0 || w.Instrs <= 0 {
			return fmt.Errorf("benchjson: %q: degenerate result (%d cycles, %d instrs)",
				w.Name, w.Cycles, w.Instrs)
		}
		if w.Counters.Get("sim.cycles") != w.Cycles {
			return fmt.Errorf("benchjson: %q: counter sim.cycles = %d, field cycles = %d",
				w.Name, w.Counters.Get("sim.cycles"), w.Cycles)
		}
		stalls := w.Counters.Sum(tmsim.StallCounterNames...)
		if want := w.Cycles - w.Instrs; stalls != want {
			return fmt.Errorf("benchjson: %q: per-cause stalls sum to %d, want cycles-instrs = %d",
				w.Name, stalls, want)
		}
	}
	return nil
}

// WriteBenchJSON marshals the report to path (indented, trailing
// newline) after validating it.
func WriteBenchJSON(path string, r *BenchReport) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON loads and validates a report written by WriteBenchJSON.
func ReadBenchJSON(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
