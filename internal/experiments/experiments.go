// Package experiments regenerates every table and figure of the paper's
// evaluation from the processor model: Table 1 (architecture), Table 3
// (CABAC decoding), Table 4 (area/power), Table 6 (TM3260 vs TM3270),
// Figure 1 (instruction encoding sizes), Figure 3 (region prefetching)
// and Figure 7 (relative performance of configurations A–D), plus the
// Section 6 ablations (motion estimation with TM3270-specific features).
// It is shared by cmd/tm3270bench and the repository's benchmark suite.
package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"tm3270/internal/config"
	"tm3270/internal/power"
	"tm3270/internal/runner"
	"tm3270/internal/workloads"
)

// RunResult couples a workload run with its target; it is the runner's
// result type (static code properties ride on the Artifact).
type RunResult = runner.Result

// Run executes one workload on one target and checks its output. It is
// the serial single-run path; matrix experiments go through
// runner.Batch for bounded parallelism and artifact caching.
func Run(w *workloads.Spec, t config.Target) (*RunResult, error) {
	return runner.RunContext(context.Background(), w, t)
}

// Figure7Row is the relative performance of one workload across the
// four configurations, normalized to configuration A (the TM3260).
type Figure7Row struct {
	Workload         string
	RelB, RelC, RelD float64
}

// Figure7 runs the Table 5 workload x configuration A–D matrix (44
// cells) on the batch runner with the given parallelism (<=1 serial;
// <=0 GOMAXPROCS) and shared artifact cache (nil for a private one).
// Each cell keeps the paper's "re-compilation only" methodology: a
// freshly built workload with its own memory image, compiled per
// target. Row aggregation is in job order, so results are independent
// of the parallelism.
func Figure7(p workloads.Params, parallel int, cache *runner.Cache) ([]Figure7Row, error) {
	targets := []config.Target{config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD()}
	names := workloads.Table5Names()
	b := runner.Batch{Params: p, Parallel: parallel, Cache: cache}
	results := b.Run(context.Background(), runner.Matrix(names, targets))
	var rows []Figure7Row
	for i, name := range names {
		secs := make([]float64, len(targets))
		for j := range targets {
			jr := results[i*len(targets)+j]
			if jr.Err != nil {
				return nil, jr.Err
			}
			secs[j] = jr.Result.Seconds()
		}
		rows = append(rows, Figure7Row{
			Workload: name,
			RelB:     secs[0] / secs[1],
			RelC:     secs[0] / secs[2],
			RelD:     secs[0] / secs[3],
		})
	}
	return rows, nil
}

// Figure7Average returns the mean relative performance of each
// configuration (the paper reports 2.29 for D).
func Figure7Average(rows []Figure7Row) (b, c, d float64) {
	for _, r := range rows {
		b += r.RelB
		c += r.RelC
		d += r.RelD
	}
	n := float64(len(rows))
	return b / n, c / n, d / n
}

// PrintFigure7 renders the rows as the Figure 7 series.
func PrintFigure7(w io.Writer, rows []Figure7Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 7: relative performance (configuration A = 1.00)")
	fmt.Fprintln(tw, "workload\tA\tB\tC\tD")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t1.00\t%.2f\t%.2f\t%.2f\n", r.Workload, r.RelB, r.RelC, r.RelD)
	}
	b, c, d := Figure7Average(rows)
	fmt.Fprintf(tw, "average\t1.00\t%.2f\t%.2f\t%.2f\t(paper: D = 2.29)\n", b, c, d)
	tw.Flush()
}

// Table3Row is one field type of Table 3.
type Table3Row struct {
	Field      string
	StreamBits int
	RefInstrs  int64
	OptInstrs  int64
}

// RefPerBit returns non-optimized VLIW instructions per stream bit.
func (r *Table3Row) RefPerBit() float64 { return float64(r.RefInstrs) / float64(r.StreamBits) }

// OptPerBit returns optimized VLIW instructions per stream bit.
func (r *Table3Row) OptPerBit() float64 { return float64(r.OptInstrs) / float64(r.StreamBits) }

// Speedup returns the Table 3 speedup of the CABAC operations.
func (r *Table3Row) Speedup() float64 { return float64(r.RefInstrs) / float64(r.OptInstrs) }

// Table3 measures the CABAC decoding process with and without the new
// CABAC operations for I, P and B fields.
func Table3(p workloads.Params) ([]Table3Row, error) {
	fields := []workloads.FieldType{
		workloads.FieldI(p.CabacIBits),
		workloads.FieldP(p.CabacPBits),
		workloads.FieldB(p.CabacBBits),
	}
	t := config.TM3270()
	var rows []Table3Row
	for _, f := range fields {
		ref, err := Run(workloads.CABACRef(f), t)
		if err != nil {
			return nil, err
		}
		opt, err := Run(workloads.CABACOpt(f), t)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Field:      f.Name,
			StreamBits: workloads.StreamBits(f),
			RefInstrs:  ref.Stats.Instrs,
			OptInstrs:  opt.Stats.Instrs,
		})
	}
	return rows, nil
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 3: CABAC decoding, non-optimized vs optimized (new CABAC operations)")
	fmt.Fprintln(tw, "field\tbits/field\tVLIW instr\tinstr/bit\tVLIW instr (opt)\tinstr/bit (opt)\tspeedup")
	paper := map[string][3]float64{"I": {21.1, 12.5, 1.7}, "P": {28.0, 17.4, 1.6}, "B": {33.8, 22.3, 1.5}}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%.1f\t%.2f\t(paper: %.1f -> %.1f, %.1fx)\n",
			r.Field, r.StreamBits, r.RefInstrs, r.RefPerBit(), r.OptInstrs, r.OptPerBit(),
			r.Speedup(), paper[r.Field][0], paper[r.Field][1], paper[r.Field][2])
	}
	tw.Flush()
}

// Table4 renders the area and power breakdown, at the paper's MP3
// reference activity and optionally at a measured activity point.
func Table4(w io.Writer, p workloads.Params) error {
	t := config.TM3270()
	area := power.Area(&t)
	ref, err := power.Power(power.MP3Reference(), power.NominalVoltage)
	if err != nil {
		return err
	}
	low, err := power.Power(power.MP3Reference(), power.MinVoltage)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 4: TM3270 area/power breakdown (90 nm)")
	fmt.Fprintln(tw, "module\tarea (mm^2)\tMP3 power (mW/MHz at 1.2V)")
	for m := 0; m < power.ModuleCount(); m++ {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\n", power.Name(m), area.Modules[m], ref.Modules[m])
	}
	fmt.Fprintf(tw, "total\t%.2f\t%.3f\t(paper: 8.08 mm^2; module column sums to 0.999, paper prints total 0.935)\n",
		area.Total(), ref.Total())
	fmt.Fprintf(tw, "at 0.8V\t\t%.3f mW/MHz\t(quadratic voltage scaling, ratio 4/9)\n", low.Total())
	fmt.Fprintf(tw, "MP3 at 8 MHz, 0.8V\t\t%.2f mW\n", low.MilliWattsAt(8))
	tw.Flush()

	// Measured operating point of the MP3-shaped workload.
	r, err := Run(workloads.MP3Synth(p), t)
	if err != nil {
		return err
	}
	meas, err := power.Power(r.Activity(), power.NominalVoltage)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "measured mp3_synth: OPI %.2f, CPI %.2f -> %.3f mW/MHz at 1.2V (model reference point: OPI 4.5, CPI 1.0)\n",
		r.Stats.OPI(), r.Stats.CPI(), meas.Total())
	return nil
}

// Table1 prints the architecture summary.
func Table1(w io.Writer) {
	t := config.TM3270()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 1: TM3270 architecture")
	fmt.Fprintln(tw, "architecture\t5 issue slot VLIW, guarded RISC-like operations")
	fmt.Fprintln(tw, "pipeline depth\t7-12 stages")
	fmt.Fprintln(tw, "address/data width\t32 bits")
	fmt.Fprintln(tw, "register file\tunified, 128 32-bit registers")
	fmt.Fprintln(tw, "functional units\t31")
	fmt.Fprintln(tw, "IEEE-754 float\tyes")
	fmt.Fprintln(tw, "SIMD\t1x32, 2x16, 4x8 bit")
	fmt.Fprintf(tw, "instruction cache\t%v, LRU\n", t.ICache)
	fmt.Fprintf(tw, "data cache\t%v, LRU, %v\n", t.DCache, t.DCache.WriteMiss)
	tw.Flush()
}

// Table6 prints the TM3260/TM3270 comparison.
func Table6(w io.Writer) {
	a, d := config.TM3260(), config.TM3270()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 6: TM3260 and TM3270 characteristics")
	fmt.Fprintln(tw, "feature\tTM3260\tTM3270")
	fmt.Fprintf(tw, "operating frequency\t%d MHz\t%d MHz\n", a.FreqMHz, d.FreqMHz)
	fmt.Fprintf(tw, "instruction cache\t%v\t%v\n", a.ICache, d.ICache)
	fmt.Fprintf(tw, "jump delay slots\t%d\t%d\n", a.JumpDelaySlots, d.JumpDelaySlots)
	fmt.Fprintf(tw, "data cache\t%v\t%v\n", a.DCache, d.DCache)
	fmt.Fprintf(tw, "write miss policy\t%v\t%v\n", a.DCache.WriteMiss, d.DCache.WriteMiss)
	fmt.Fprintf(tw, "load latency\t%d cycles\t%d cycles\n", a.LoadLatency, d.LoadLatency)
	fmt.Fprintf(tw, "loads per instr\t%d\t%d\n", a.MaxLoadsPerInstr, d.MaxLoadsPerInstr)
	tw.Flush()
}

// Figure1 reports the encoding statistics of a compiled workload:
// instruction size histogram and total code size.
func Figure1(w io.Writer, p workloads.Params) error {
	spec := workloads.Memcpy(p)
	t := config.TM3270()
	art, err := runner.Compile(spec.Prog, t)
	if err != nil {
		return err
	}
	hist := map[int]int{}
	for _, s := range art.Enc.Size {
		hist[s]++
	}
	fmt.Fprintf(w, "Figure 1: template-compressed encoding of %q: %d instructions, %d bytes (%.1f bytes/instr; empty=2B, maximal=28B)\n",
		spec.Name, art.SchedInstrs(), art.CodeBytes(),
		float64(art.CodeBytes())/float64(art.SchedInstrs()))
	for s := 2; s <= 28; s++ {
		if hist[s] > 0 {
			fmt.Fprintf(w, "  %2d-byte instructions: %d\n", s, hist[s])
		}
	}
	return nil
}

// Figure3 measures the Figure 3 block-walk with and without region
// prefetching.
func Figure3(w io.Writer, p workloads.Params) error {
	t := config.TM3270()
	off, err := Run(workloads.BlockWalk(p, false), t)
	if err != nil {
		return err
	}
	on, err := Run(workloads.BlockWalk(p, true), t)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 3: 4x4 block walk over a %dx%d image\n", p.ImageW, p.ImageH)
	fmt.Fprintf(w, "  no prefetch:   %8d cycles, %5d load misses, %6d stall cycles\n",
		off.Stats.Cycles, off.Machine.DC.Stats.LoadMisses, off.Stats.DataStalls)
	fmt.Fprintf(w, "  region stride: %8d cycles, %5d load misses, %6d stall cycles, %d prefetches (%d useful, %d late)\n",
		on.Stats.Cycles, on.Machine.DC.Stats.LoadMisses, on.Stats.DataStalls,
		on.Machine.PF.Stats.Issued, on.Machine.PF.Stats.Useful, on.Machine.PF.Stats.Late)
	fmt.Fprintf(w, "  speedup: %.2fx\n", float64(off.Stats.Cycles)/float64(on.Stats.Cycles))
	return nil
}

// AblationRow is one motion-estimation variant.
type AblationRow struct {
	Name   string
	Cycles int64
	Instrs int64
}

// Ablation measures the Section 6 motion-estimation claim: TM3270-
// specific features (collapsed loads, prefetching) against the portable
// optimized kernel.
func Ablation(w io.Writer, width, height int) error {
	t := config.TM3270()
	var rows []AblationRow
	for _, mp := range []workloads.MEParams{
		{W: width, H: height},
		{W: width, H: height, UseFrac8: true},
		{W: width, H: height, UseFrac8: true, Prefetch: true},
	} {
		r, err := Run(workloads.MotionEst(mp), t)
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{Name: r.Workload, Cycles: r.Stats.Cycles, Instrs: r.Stats.Instrs})
	}
	fmt.Fprintf(w, "Ablation: motion estimation on the TM3270 (%dx%d frame)\n", width, height)
	base := rows[0].Cycles
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %10d cycles  %10d instrs  speedup %.2fx\n",
			r.Name, r.Cycles, r.Instrs, float64(base)/float64(r.Cycles))
	}
	fmt.Fprintln(w, "  (paper: TM3270-specific features buy more than a factor two on ME kernels)")

	// Texture-pipeline ablation (paper reference [13]): the IDCT dot
	// products on SUPER_DUALIMIX versus ifir16 pairs.
	p := workloads.Small()
	p.Mpeg2W, p.Mpeg2H, p.Mpeg2Frames = 352, 288, 1
	wFir, err := workloads.Mpeg2B(p)
	if err != nil {
		return err
	}
	fir, err := Run(wFir, t)
	if err != nil {
		return err
	}
	wSup, err := workloads.Mpeg2Super(p)
	if err != nil {
		return err
	}
	sup, err := Run(wSup, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation: MPEG2 texture pipeline, ifir16 vs SUPER_DUALIMIX IDCT (%dx%d)\n", p.Mpeg2W, p.Mpeg2H)
	fmt.Fprintf(w, "  ifir16 IDCT      %10d ops  %10d instrs  %10d cycles\n",
		fir.Stats.ExecOps, fir.Stats.Instrs, fir.Stats.Cycles)
	fmt.Fprintf(w, "  SUPER_DUALIMIX   %10d ops  %10d instrs  %10d cycles  (%.0f%% fewer operations)\n",
		sup.Stats.ExecOps, sup.Stats.Instrs, sup.Stats.Cycles,
		100*(1-float64(sup.Stats.ExecOps)/float64(fir.Stats.ExecOps)))

	// Temporal up-conversion prefetch ablation ([14]: data prefetching
	// improves performance by more than 20%).
	up := workloads.Full()
	up.ImageW, up.ImageH = width, height
	uOff, err := Run(workloads.Upconv(up, false), t)
	if err != nil {
		return err
	}
	uOn, err := Run(workloads.Upconv(up, true), t)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation: temporal up-conversion (%dx%d), region prefetch of both source frames\n", width, height)
	fmt.Fprintf(w, "  no prefetch      %10d cycles  %8d stall cycles\n", uOff.Stats.Cycles, uOff.Stats.DataStalls)
	fmt.Fprintf(w, "  prefetch         %10d cycles  %8d stall cycles  speedup %.2fx\n",
		uOn.Stats.Cycles, uOn.Stats.DataStalls,
		float64(uOff.Stats.Cycles)/float64(uOn.Stats.Cycles))
	return nil
}

// LineSizeSweep reproduces the design-space argument behind Table 6's
// footnote: the paper doubled the line size to 128 bytes *because* the
// cache grew to 128 KB. Running the mpeg2 working set over the
// capacity x line-size grid (TM3270 core, fixed frequency) shows the
// interaction: with 16 KB, 128-byte lines lose to 64-byte lines
// (capacity misses — why configuration A beats B on mpeg2); with
// 128 KB, they win (fewer, better-amortized fills).
func LineSizeSweep(w io.Writer, p workloads.Params) error {
	fmt.Fprintln(w, "Design sweep: mpeg2_b cycles on a TM3270 core at 350 MHz")
	fmt.Fprintln(w, "             (4-way D$, capacity x line size)")
	type cell struct {
		sizeKB, lineB int
	}
	cells := []cell{{16, 64}, {16, 128}, {64, 64}, {64, 128}, {128, 64}, {128, 128}}
	results := map[cell]int64{}
	for _, c := range cells {
		t := config.TM3270()
		t.Name = fmt.Sprintf("%dKB/%dB", c.sizeKB, c.lineB)
		t.DCache.SizeBytes = c.sizeKB << 10
		t.DCache.LineBytes = c.lineB
		w2, err := workloads.Mpeg2B(p)
		if err != nil {
			return err
		}
		r, err := Run(w2, t)
		if err != nil {
			return err
		}
		results[c] = r.Stats.Cycles
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "capacity\t64B lines\t128B lines\t128B wins?")
	for _, kb := range []int{16, 64, 128} {
		c64 := results[cell{kb, 64}]
		c128 := results[cell{kb, 128}]
		verdict := "no"
		if c128 < c64 {
			verdict = "yes"
		}
		fmt.Fprintf(tw, "%d KB\t%d\t%d\t%s\n", kb, c64, c128, verdict)
	}
	tw.Flush()
	return nil
}
