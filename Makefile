GO ?= go

.PHONY: check build vet test race fuzz bench campaign bench-json

# Tier-1 gate: vet, the full test suite under the race detector, and the
# machine-readable quick bench (written and schema-checked).
check: vet race bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/encode/

bench:
	$(GO) test -bench=. -benchmem ./...

campaign:
	$(GO) run ./cmd/tm3270bench -faults

# Quick-mode machine-readable bench result. The bench validates the
# written file (schema version + stall-accounting identity) and fails
# the build on mismatch.
bench-json:
	$(GO) run ./cmd/tm3270bench -quick -json BENCH_quick.json
