GO ?= go

.PHONY: check build vet test race fuzz bench campaign cosim cover bench-json bench-par lint tmvet binlint serve-smoke campaign-smoke

# Tier-1 gate: lint (vet + tmvet + gofmt), the full test suite under the
# race detector (includes the concurrent-runner and batch determinism
# tests in internal/runner, and TestEnginesAgree — the direct
# fast-vs-interp equivalence matrix), the per-package coverage-floor
# gate, the differential conformance campaign on BOTH execution engines
# (zero divergences against the reference model transitively proves the
# block-cache fast path and the interpreter agree on every covered
# program), the machine-readable quick bench (written and
# schema-checked), the serial-vs-parallel byte-identity proof, the
# live-daemon smoke (boot tm3270d, drive load, assert zero 5xx and a
# clean SIGTERM drain), and the campaign kill/resume smoke (shard a
# cosim campaign, SIGKILL one shard mid-run, resume, and byte-compare
# the merged aggregate against an unsharded run).
check: lint race cover cosim bench-json bench-par serve-smoke campaign-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint: go vet, the repo's custom analyzers (cmd/tmvet: panicfree,
# counternames, ctxarg), a gofmt cleanliness gate, and the binary lint
# over every shipped workload image.
lint: vet tmvet binlint
	@fmt=$$(gofmt -l .); \
	if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi

tmvet:
	$(GO) run ./cmd/tmvet .

# binlint: static-verify every shipped workload's encoded binary with
# the full semantic contract (entry values, memory map, loop bounds):
# structural checks plus value-range proofs and loop-bound inference.
# -strict makes any diagnostic — warning included — a failure.
binlint:
	$(GO) run ./cmd/tm3270lint -strict -q

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/encode/

bench:
	$(GO) test -bench=. -benchmem ./...

campaign:
	$(GO) run ./cmd/tm3270bench -faults

# cosim: the differential conformance campaign — every workload plus
# 2000 generated programs, pipeline model vs reference model, all four
# targets, once per execution engine (blockcache and interp). Exits
# nonzero on any divergence.
cosim:
	$(GO) run ./cmd/tm3270bench -quick -cosim

# cover: per-package statement coverage against the checked-in floors
# (coverage_floors.txt), enforced by cmd/covergate.
cover:
	$(GO) test -count=1 -cover ./... > COVER.out 2>&1 || (cat COVER.out; rm -f COVER.out; exit 1)
	@$(GO) run ./cmd/covergate < COVER.out; s=$$?; rm -f COVER.out; exit $$s

# cover-ratchet: same gate, but also raise the floor of any package
# holding floor+5 and rewrite coverage_floors.txt (commit the result).
cover-ratchet:
	$(GO) test -count=1 -cover ./... > COVER.out 2>&1 || (cat COVER.out; rm -f COVER.out; exit 1)
	@$(GO) run ./cmd/covergate -ratchet < COVER.out; s=$$?; rm -f COVER.out; exit $$s

# Quick-mode machine-readable bench result. The bench validates the
# written file (schema version + stall-accounting identity) and fails
# the build on mismatch.
bench-json:
	$(GO) run ./cmd/tm3270bench -quick -json BENCH_quick.json

# bench-par: the batch runner's determinism contract, end to end — the
# quick bench JSON at -parallel 4 must be byte-identical to -parallel 1.
bench-par:
	$(GO) run ./cmd/tm3270bench -quick -parallel 1 -json BENCH_serial.json
	$(GO) run ./cmd/tm3270bench -quick -parallel 4 -json BENCH_par.json
	cmp BENCH_serial.json BENCH_par.json
	@rm -f BENCH_serial.json BENCH_par.json
	@echo "bench-par: parallel output byte-identical to serial"

# serve-smoke: boot the daemon, hammer it with the shed-aware load
# driver, SIGTERM it, and assert zero 5xx plus a clean drain with no
# dropped in-flight responses.
serve-smoke:
	GO=$(GO) sh scripts/serve_smoke.sh

# campaign-smoke: the campaign engine's durability contract, end to
# end — a sharded cosim campaign with one shard SIGKILLed mid-run must
# resume from its store and the merged aggregate must be byte-identical
# to an unsharded run of the same matrix.
campaign-smoke:
	GO=$(GO) sh scripts/campaign_smoke.sh
