GO ?= go

.PHONY: check build vet test race fuzz bench campaign

# Tier-1 gate: vet plus the full test suite under the race detector.
check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/encode/

bench:
	$(GO) test -bench=. -benchmem ./...

campaign:
	$(GO) run ./cmd/tm3270bench -faults
