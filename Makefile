GO ?= go

.PHONY: check build vet test race fuzz bench campaign bench-json lint tmvet binlint

# Tier-1 gate: lint (vet + tmvet + gofmt), the full test suite under the
# race detector, and the machine-readable quick bench (written and
# schema-checked).
check: lint race bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint: go vet, the repo's custom analyzers (cmd/tmvet: panicfree,
# counternames), and a gofmt cleanliness gate.
lint: vet tmvet
	@fmt=$$(gofmt -l .); \
	if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi

tmvet:
	$(GO) run ./cmd/tmvet .

# binlint: static-verify every shipped workload's encoded binary.
binlint:
	$(GO) run ./cmd/tm3270lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/encode/

bench:
	$(GO) test -bench=. -benchmem ./...

campaign:
	$(GO) run ./cmd/tm3270bench -faults

# Quick-mode machine-readable bench result. The bench validates the
# written file (schema version + stall-accounting identity) and fails
# the build on mismatch.
bench-json:
	$(GO) run ./cmd/tm3270bench -quick -json BENCH_quick.json
